/**
 * @file
 * jrs_profile — hot-method attribution for one workload run.
 *
 * Runs a workload while recording its dynamic native stream, then
 * joins the phase-tagged stream with the run's method map (bytecode
 * ranges + JIT code-cache ranges) and prints the top-N methods by
 * simulated native instructions for every execution phase. This is
 * the paper's phase accounting with the "which method?" dimension
 * added — entirely offline, from the same record-once stream the
 * sweep engine uses.
 *
 *   jrs_profile <workload> [options]
 *
 *   --mode interp|jit|counter:N  execution mode (default: jit)
 *   --arg N                      workload argument (default: smallArg)
 *   --tiny                       use the workload's tinyArg instead
 *   --top N                      rows per phase table (default: 10)
 *   --json FILE                  machine-readable per-phase top-N
 *                                tables (schema "jrs-profile-v1")
 *   --metrics-json FILE          write a jrs-metrics-v1 snapshot
 *   --trace-json FILE            write Chrome trace-event JSON
 *                                (open in Perfetto / chrome://tracing)
 *   --perf-json FILE             replay the recorded stream through a
 *                                perf-attribution pipeline and write a
 *                                jrs-perf-report-v1 report (per-method
 *                                CPI stacks, miss/mispredict profiles)
 *   --cct-json FILE              jrs-cct-v1 calling-context tree
 *   --flame FILE                 folded stacks (flamegraph.pl input)
 *   --sample-json FILE           jrs-sample-v1 sampled profile
 *   --sample-period N            mean cycles between samples
 *   --sample-seed N              sampling PRNG seed
 *   --calibrate                  replay through both the exact and the
 *                                sampled profiler and print a
 *                                per-method sampled-vs-exact error
 *                                table (share error, top-N overlap,
 *                                rank agreement)
 *   --collector/--heap-bytes/... collector knobs (see GcCli)
 *
 * Differential flamegraphs (two runs of the same workload):
 *
 *   --diff-mode MODE             second run in MODE (e.g. interp)
 *   --diff-collector NAME        second run under collector NAME
 *   --flame-diff FILE            difffolded output "stack valA valB"
 *                                (render: flamegraph.pl --negate)
 *
 * Examples:
 *   jrs_profile compress
 *   jrs_profile jess --mode counter:500 --top 5
 *   jrs_profile compress --flame compress.folded
 *   jrs_profile compress --calibrate --sample-period 1024
 *   jrs_profile db --mode jit --diff-mode interp --flame-diff d.folded
 *   jrs_profile db --diff-collector marksweep --flame-diff gc.folded
 */
#include <cstdlib>
#include <iostream>
#include <fstream>
#include <string>

#include "arch/pipeline/pipeline.h"
#include "isa/trace_buffer.h"
#include "obs/attribution.h"
#include "obs/cli.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "obs/perf.h"
#include "prof/cct.h"
#include "prof/sampler.h"
#include "support/statistics.h"
#include "vm/engine/engine.h"
#include "vm/engine/policy.h"
#include "workloads/workload.h"

using namespace jrs;

namespace {

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg != nullptr)
        std::cerr << "error: " << msg << "\n\n";
    std::cerr << "usage: jrs_profile <workload>"
                 " [--mode interp|jit|counter:N] [--arg N] [--tiny]"
                 " [--top N] [--json FILE]"
              << obs::ObsCli::usageText()
              << obs::GcCli::usageText()
              << "\n       [--diff-mode MODE] [--diff-collector NAME]"
                 " [--flame-diff FILE] [--calibrate]\n\nworkloads:\n";
    for (const WorkloadInfo &w : allWorkloads())
        std::cerr << "  " << w.name << " — " << w.description << '\n';
    std::exit(2);
}

std::shared_ptr<CompilationPolicy>
parseMode(const std::string &mode)
{
    if (mode == "interp")
        return std::make_shared<NeverCompilePolicy>();
    if (mode == "jit")
        return std::make_shared<AlwaysCompilePolicy>();
    if (mode.rfind("counter:", 0) == 0) {
        const std::string v = mode.substr(8);
        char *end = nullptr;
        const unsigned long n = std::strtoul(v.c_str(), &end, 10);
        if (end == v.c_str() || *end != '\0')
            usage("counter mode expects counter:N");
        return std::make_shared<CounterPolicy>(
            static_cast<std::uint64_t>(n));
    }
    usage("unknown --mode (expect interp, jit, or counter:N)");
}

long
parseLong(const std::string &v, const char *what)
{
    char *end = nullptr;
    const long n = std::strtol(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0') {
        std::cerr << "error: " << what << " expects a number\n";
        std::exit(2);
    }
    return n;
}

using obs::jsonEscape;

/** One recorded run: the stream plus everything needed to join it. */
struct Recorded {
    std::string label;
    Program prog;
    TraceBuffer buffer;
    std::shared_ptr<const obs::MethodMap> map;
    RunResult res;
};

/** Run @p w once, recording; exits non-zero on an incomplete run. */
Recorded
record(const WorkloadInfo *w, const std::string &mode,
       std::int32_t arg, const obs::GcCli &gcCli)
{
    Recorded r;
    r.label = std::string(w->name) + "/" + mode;
    if (gcCli.enabled())
        r.label += std::string("/") + gc::collectorName(
            gcCli.gc.collector);
    r.prog = w->build();
    EngineConfig cfg;
    cfg.policy = parseMode(mode);
    cfg.sink = &r.buffer;
    gcCli.apply(cfg);
    ExecutionEngine engine(r.prog, cfg);
    r.res = engine.run(arg);
    if (!r.res.completed) {
        std::cerr << w->name << " did not complete: "
                  << (r.res.uncaughtException != nullptr
                          ? r.res.uncaughtException
                          : "unknown")
                  << '\n';
        std::exit(1);
    }
    r.map = std::make_shared<const obs::MethodMap>(
        obs::MethodMap::forRun(engine.registry(), engine.codeCache()));
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const WorkloadInfo *w = findWorkload(argv[1]);
    if (w == nullptr)
        usage("unknown workload");

    std::string mode = "jit";
    std::int32_t arg = w->smallArg;
    std::size_t topN = 10;
    std::string jsonPath;
    std::string diffMode;
    std::string diffCollector;
    std::string flameDiff;
    bool calibrateRequested = false;
    obs::ObsCli cli;
    obs::GcCli gcCli;
    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage("missing value");
            return argv[++i];
        };
        if (a == "--mode") {
            mode = next();
        } else if (a == "--arg") {
            arg = static_cast<std::int32_t>(parseLong(next(), "--arg"));
        } else if (a == "--tiny") {
            arg = w->tinyArg;
        } else if (a == "--top") {
            topN = static_cast<std::size_t>(parseLong(next(), "--top"));
        } else if (a == "--json") {
            jsonPath = next();
        } else if (a == "--diff-mode") {
            diffMode = next();
        } else if (a == "--diff-collector") {
            diffCollector = next();
        } else if (a == "--flame-diff") {
            flameDiff = next();
        } else if (a == "--calibrate") {
            calibrateRequested = true;
        } else if (cli.tryParse(a, next)) {
            continue;
        } else if (gcCli.tryParse(a, next)) {
            continue;
        } else {
            usage("unknown option");
        }
    }
    const bool diffRequested = !diffMode.empty()
        || !diffCollector.empty();
    if (!flameDiff.empty() && !diffRequested)
        usage("--flame-diff needs --diff-mode or --diff-collector");
    if (diffRequested && flameDiff.empty())
        usage("--diff-mode/--diff-collector need --flame-diff FILE");

    cli.setup();

    // Record the run's native stream, then join it offline with the
    // method map built from the finished engine's registry and code
    // cache (the map needs the post-run cache: methods get their
    // code-cache addresses as they are compiled).
    Recorded base = record(w, mode, arg, gcCli);
    obs::AttributionSink attr(*base.map);
    base.buffer.replay(attr);

    std::cout << w->name << " --mode " << mode << " --arg " << arg
              << ": exit=" << base.res.exitValue << ", "
              << withCommas(base.res.totalEvents)
              << " simulated native instructions, "
              << base.res.methodsCompiled << " methods compiled\n";
    for (std::size_t p = 0; p < kNumPhases; ++p) {
        const Phase phase = static_cast<Phase>(p);
        const std::uint64_t events = attr.phaseEvents(phase);
        if (events == 0)
            continue;
        std::cout << '\n'
                  << phaseName(phase) << " — " << withCommas(events)
                  << " events ("
                  << fixed(100.0 * static_cast<double>(events)
                               / static_cast<double>(
                                     base.res.totalEvents),
                           1)
                  << "% of run)\n";
        attr.phaseTable(phase, topN).print(std::cout);
    }

    if (!jsonPath.empty()) {
        // The satellite view: the per-phase tables above, verbatim,
        // as one machine-readable document.
        std::ofstream f(jsonPath, std::ios::trunc);
        if (!f) {
            std::cerr << "error: cannot write " << jsonPath << '\n';
            return 1;
        }
        f << "{\n  \"schema\": \"jrs-profile-v1\",\n";
        f << "  \"workload\": \"" << w->name << "\",\n";
        f << "  \"mode\": \"" << jsonEscape(mode) << "\",\n";
        f << "  \"arg\": " << arg << ",\n";
        f << "  \"exit\": " << base.res.exitValue << ",\n";
        f << "  \"total_events\": " << base.res.totalEvents << ",\n";
        f << "  \"methods_compiled\": " << base.res.methodsCompiled
          << ",\n";
        f << "  \"phases\": [\n";
        bool firstPhase = true;
        for (std::size_t p = 0; p < kNumPhases; ++p) {
            const Phase phase = static_cast<Phase>(p);
            const std::uint64_t events = attr.phaseEvents(phase);
            if (events == 0)
                continue;
            if (!firstPhase)
                f << ",\n";
            firstPhase = false;
            f << "    {\"phase\": \"" << phaseName(phase)
              << "\", \"events\": " << events << ", \"top\": [\n";
            const auto rows = attr.top(phase, topN);
            for (std::size_t r = 0; r < rows.size(); ++r) {
                f << "      {\"method\": \""
                  << jsonEscape(rows[r].name)
                  << "\", \"events\": " << rows[r].events
                  << ", \"pct\": " << fixed(rows[r].pct, 4) << '}'
                  << (r + 1 < rows.size() ? ",\n" : "\n");
            }
            f << "    ]}";
        }
        f << "\n  ]\n}\n";
        std::cout << "\nwrote " << jsonPath << '\n';
    }

    if (cli.perfRequested()) {
        // Second offline replay, this time through the pipeline model
        // with attribution attached: same stream, richer join.
        obs::PerfOptions popt;
        popt.program = &base.prog;
        obs::AttributedPipeline attributed(PipelineConfig{}, base.map,
                                           popt);
        base.buffer.replay(attributed);
        obs::PerfReportSet reports;
        reports.add(base.label, attributed.perf());
        std::cout << '\n';
        cli.writePerf(reports, std::cout);
    }

    if (cli.cctRequested() || !flameDiff.empty()) {
        // Offline replay through the calling-context profiler.
        prof::CctPipeline cct(PipelineConfig{}, base.map);
        base.buffer.replay(cct);
        prof::CctReportSet reports;
        reports.add(base.label, cct.cct());
        cli.writeCct(reports, std::cout);

        if (!flameDiff.empty()) {
            obs::GcCli diffGc = gcCli;
            if (!diffCollector.empty()
                && !gc::parseCollector(diffCollector,
                                       &diffGc.gc.collector)) {
                std::cerr << "error: unknown --diff-collector '"
                          << diffCollector << "'\n";
                return 2;
            }
            Recorded other = record(
                w, diffMode.empty() ? mode : diffMode, arg, diffGc);
            prof::CctPipeline otherCct(PipelineConfig{}, other.map);
            other.buffer.replay(otherCct);
            prof::writeFoldedDiff(cct.cct().foldedLines(),
                                  otherCct.cct().foldedLines(),
                                  flameDiff);
            std::cout << "wrote " << flameDiff << " (" << base.label
                      << " vs " << other.label << ")\n";
        }
    }

    if (calibrateRequested || cli.sampleRequested()) {
        // Offline replay through the sampling profiler (cycle clock).
        prof::SamplePipeline sp(PipelineConfig{}, base.map,
                                cli.sampleOptions());
        base.buffer.replay(sp);
        std::cout << "\nsampled profile: "
                  << withCommas(sp.sampler().samples())
                  << " samples (period "
                  << sp.sampler().options().period << ", seed "
                  << sp.sampler().options().seed << ")\n";

        if (calibrateRequested) {
            // Ground truth: the exact profiler over the same stream.
            prof::CctPipeline exact(PipelineConfig{}, base.map);
            base.buffer.replay(exact);
            if (exact.pipeline().cycles()
                != sp.pipeline().cycles()) {
                std::cerr << "error: sampled replay perturbed the "
                             "model ("
                          << sp.pipeline().cycles() << " cycles vs "
                          << exact.pipeline().cycles() << ")\n";
                return 1;
            }
            const prof::CalibrationReport rep =
                prof::calibrate(exact.cct(), sp.sampler(), topN);
            std::cout << "\nsampled vs exact (per-method "
                      << rep.value << " shares):\n"
                      << rep.text(topN);
        }

        prof::SampleReportSet sampleReports;
        sampleReports.add(base.label, sp.sampler());
        cli.writeSample(sampleReports, std::cout);
    }
    cli.finish(std::cout);
    return 0;
}
