/**
 * @file
 * jrs_profile — hot-method attribution for one workload run.
 *
 * Runs a workload while recording its dynamic native stream, then
 * joins the phase-tagged stream with the run's method map (bytecode
 * ranges + JIT code-cache ranges) and prints the top-N methods by
 * simulated native instructions for every execution phase. This is
 * the paper's phase accounting with the "which method?" dimension
 * added — entirely offline, from the same record-once stream the
 * sweep engine uses.
 *
 *   jrs_profile <workload> [options]
 *
 *   --mode interp|jit|counter:N  execution mode (default: jit)
 *   --arg N                      workload argument (default: smallArg)
 *   --tiny                       use the workload's tinyArg instead
 *   --top N                      rows per phase table (default: 10)
 *   --metrics-json FILE          write a jrs-metrics-v1 snapshot
 *   --trace-json FILE            write Chrome trace-event JSON
 *                                (open in Perfetto / chrome://tracing)
 *   --perf-json FILE             replay the recorded stream through a
 *                                perf-attribution pipeline and write a
 *                                jrs-perf-report-v1 report (per-method
 *                                CPI stacks, miss/mispredict profiles)
 *
 * Examples:
 *   jrs_profile compress
 *   jrs_profile jess --mode counter:500 --top 5
 *   jrs_profile db --tiny --trace-json db.trace.json
 *   jrs_profile compress --perf-json compress.perf.json
 */
#include <cstdlib>
#include <iostream>
#include <string>

#include "arch/pipeline/pipeline.h"
#include "isa/trace_buffer.h"
#include "obs/attribution.h"
#include "obs/cli.h"
#include "obs/obs.h"
#include "obs/perf.h"
#include "support/statistics.h"
#include "vm/engine/engine.h"
#include "vm/engine/policy.h"
#include "workloads/workload.h"

using namespace jrs;

namespace {

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg != nullptr)
        std::cerr << "error: " << msg << "\n\n";
    std::cerr << "usage: jrs_profile <workload>"
                 " [--mode interp|jit|counter:N] [--arg N] [--tiny]"
                 " [--top N]"
              << obs::ObsCli::usageText() << "\n\nworkloads:\n";
    for (const WorkloadInfo &w : allWorkloads())
        std::cerr << "  " << w.name << " — " << w.description << '\n';
    std::exit(2);
}

std::shared_ptr<CompilationPolicy>
parseMode(const std::string &mode)
{
    if (mode == "interp")
        return std::make_shared<NeverCompilePolicy>();
    if (mode == "jit")
        return std::make_shared<AlwaysCompilePolicy>();
    if (mode.rfind("counter:", 0) == 0) {
        const std::string v = mode.substr(8);
        char *end = nullptr;
        const unsigned long n = std::strtoul(v.c_str(), &end, 10);
        if (end == v.c_str() || *end != '\0')
            usage("counter mode expects counter:N");
        return std::make_shared<CounterPolicy>(
            static_cast<std::uint64_t>(n));
    }
    usage("unknown --mode (expect interp, jit, or counter:N)");
}

long
parseLong(const std::string &v, const char *what)
{
    char *end = nullptr;
    const long n = std::strtol(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0') {
        std::cerr << "error: " << what << " expects a number\n";
        std::exit(2);
    }
    return n;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const WorkloadInfo *w = findWorkload(argv[1]);
    if (w == nullptr)
        usage("unknown workload");

    std::string mode = "jit";
    std::int32_t arg = w->smallArg;
    std::size_t topN = 10;
    obs::ObsCli cli;
    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage("missing value");
            return argv[++i];
        };
        if (a == "--mode") {
            mode = next();
        } else if (a == "--arg") {
            arg = static_cast<std::int32_t>(parseLong(next(), "--arg"));
        } else if (a == "--tiny") {
            arg = w->tinyArg;
        } else if (a == "--top") {
            topN = static_cast<std::size_t>(parseLong(next(), "--top"));
        } else if (cli.tryParse(a, next)) {
            continue;
        } else {
            usage("unknown option");
        }
    }

    cli.setup();

    // Record the run's native stream, then join it offline with the
    // method map built from the finished engine's registry and code
    // cache (the map needs the post-run cache: methods get their
    // code-cache addresses as they are compiled).
    const Program prog = w->build();
    EngineConfig cfg;
    cfg.policy = parseMode(mode);
    TraceBuffer buffer;
    cfg.sink = &buffer;
    ExecutionEngine engine(prog, cfg);
    const RunResult res = engine.run(arg);
    if (!res.completed) {
        std::cerr << w->name << " did not complete: "
                  << (res.uncaughtException != nullptr
                          ? res.uncaughtException
                          : "unknown")
                  << '\n';
        return 1;
    }

    const auto map = std::make_shared<const obs::MethodMap>(
        obs::MethodMap::forRun(engine.registry(), engine.codeCache()));
    obs::AttributionSink attr(*map);
    buffer.replay(attr);

    std::cout << w->name << " --mode " << mode << " --arg " << arg
              << ": exit=" << res.exitValue << ", "
              << withCommas(res.totalEvents)
              << " simulated native instructions, "
              << res.methodsCompiled << " methods compiled\n";
    for (std::size_t p = 0; p < kNumPhases; ++p) {
        const Phase phase = static_cast<Phase>(p);
        const std::uint64_t events = attr.phaseEvents(phase);
        if (events == 0)
            continue;
        std::cout << '\n'
                  << phaseName(phase) << " — " << withCommas(events)
                  << " events ("
                  << fixed(100.0 * static_cast<double>(events)
                               / static_cast<double>(res.totalEvents),
                           1)
                  << "% of run)\n";
        attr.phaseTable(phase, topN).print(std::cout);
    }

    if (!cli.metricsJson.empty() || !cli.traceJson.empty()
        || cli.perfRequested()) {
        std::cout << '\n';
    }
    if (cli.perfRequested()) {
        // Second offline replay, this time through the pipeline model
        // with attribution attached: same stream, richer join.
        obs::PerfOptions popt;
        popt.program = &prog;
        obs::AttributedPipeline attributed(PipelineConfig{}, map,
                                           popt);
        buffer.replay(attributed);
        obs::PerfReportSet reports;
        reports.add(std::string(w->name) + "/" + mode,
                    attributed.perf());
        cli.writePerf(reports, std::cout);
    }
    cli.finish(std::cout);
    return 0;
}
