/**
 * @file
 * Adaptive-compilation walkthrough (the paper's Section 3 as a demo).
 *
 * Runs one workload under the full policy spectrum — interpret-only,
 * compile-on-first-invocation, several invocation-counter thresholds,
 * and the profile-derived oracle — then prints the per-method oracle
 * decisions so you can see WHICH methods a smart JIT should leave
 * interpreted and why (their crossover N_i exceeds their use).
 *
 * Usage: adaptive_jit [workload] [arg]
 */
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "harness/experiment.h"
#include "support/statistics.h"
#include "support/table.h"

using namespace jrs;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "db";
    const WorkloadInfo *w = findWorkload(name);
    if (w == nullptr) {
        std::cerr << "unknown workload " << name << "\n";
        return 1;
    }
    const std::int32_t arg =
        argc > 2 ? std::atoi(argv[2]) : w->smallArg;

    std::cout << "adaptive compilation on '" << w->name
              << "' (arg=" << arg << ")\n\n";

    const OracleOutcome o = runOracleExperiment(*w, arg);

    // --- policy comparison ------------------------------------------------
    Table modes({"policy", "simulated_insts", "vs_jit", "compiled"});
    auto add = [&](const char *label, const RunResult &r) {
        modes.addRow({label, withCommas(r.totalEvents),
                      fixed(static_cast<double>(r.totalEvents)
                                / static_cast<double>(
                                    o.jitRun.totalEvents),
                            3),
                      std::to_string(r.methodsCompiled)});
    };
    add("interpret", o.interpRun);
    add("jit (1st invocation)", o.jitRun);
    for (std::uint64_t thr : {4u, 16u}) {
        RunSpec s;
        s.workload = w;
        s.arg = arg;
        s.policy = std::make_shared<CounterPolicy>(thr);
        const RunResult r = runWorkload(s);
        add(thr == 4 ? "counter(4)" : "counter(16)", r);
    }
    add("oracle (opt)", o.oracleRun);
    modes.print(std::cout);

    // --- per-method oracle reasoning ---------------------------------------
    std::cout << "\nper-method oracle decisions (top methods by "
                 "interpreted cost):\n";
    Table t({"method", "invocations", "I_total", "T_i", "E_total",
             "decision"});
    const Program prog = w->build();
    std::vector<MethodId> order;
    for (MethodId id = 0; id < prog.methods.size(); ++id)
        order.push_back(id);
    std::sort(order.begin(), order.end(), [&](MethodId a, MethodId b) {
        return o.interpRun.profiles.of(a).interpEvents
            > o.interpRun.profiles.of(b).interpEvents;
    });
    for (std::size_t i = 0; i < order.size() && i < 16; ++i) {
        const MethodId id = order[i];
        const MethodProfile &ip = o.interpRun.profiles.of(id);
        const MethodProfile &jp = o.jitRun.profiles.of(id);
        if (ip.invocations == 0)
            continue;
        t.addRow({prog.methods[id].name,
                  withCommas(ip.invocations),
                  withCommas(ip.interpEvents),
                  withCommas(jp.translateEvents),
                  withCommas(jp.nativeEvents),
                  o.decisions[id] ? "compile" : "interpret"});
    }
    t.print(std::cout);
    std::cout << "\noracle compiles " << o.methodsCompiledByOracle
              << " of " << o.jitRun.methodsCompiled
              << " methods; saving vs default JIT: "
              << fixed(100.0
                           * (1.0
                              - static_cast<double>(
                                    o.oracleRun.totalEvents)
                                  / static_cast<double>(
                                      o.jitRun.totalEvents)),
                       1)
              << "%\n";
    return 0;
}
