/**
 * @file
 * Suite report: run every workload at its bench size under interpreter
 * and JIT, and print one summary row per (workload, mode) — dynamic
 * instruction counts, phase split, mix, lock traffic, memory. Useful
 * both as an API example and as a calibration check that the suite's
 * shapes match the paper's qualitative profile.
 */
#include <iostream>

#include "arch/mix/instruction_mix.h"
#include "harness/experiment.h"
#include "support/table.h"
#include "support/statistics.h"

using namespace jrs;

int
main(int argc, char **argv)
{
    const bool tiny = argc > 1 && std::string(argv[1]) == "--tiny";

    Table table({"workload", "mode", "insts", "interp%", "trans%",
                 "native%", "mem%", "ctrl%", "ind%", "locks",
                 "mem_kb"});

    for (const WorkloadInfo &w : allWorkloads()) {
        const std::int32_t arg = tiny ? w.tinyArg : w.smallArg;
        for (const bool jit : {false, true}) {
            InstructionMix mix;
            RunSpec spec;
            spec.workload = &w;
            spec.arg = arg;
            spec.policy = jit
                ? std::static_pointer_cast<CompilationPolicy>(
                      std::make_shared<AlwaysCompilePolicy>())
                : std::static_pointer_cast<CompilationPolicy>(
                      std::make_shared<NeverCompilePolicy>());
            spec.sink = &mix;
            const RunResult res = runWorkload(spec);

            const std::size_t mem_bytes = jit
                ? res.memory.jitTotal()
                : res.memory.interpreterTotal();
            table.addRow({
                w.name,
                jit ? "jit" : "interp",
                withCommas(res.totalEvents),
                fixed(percent(res.inPhase(Phase::Interpret),
                              res.totalEvents), 1),
                fixed(percent(res.inPhase(Phase::Translate),
                              res.totalEvents), 1),
                fixed(percent(res.inPhase(Phase::NativeExec),
                              res.totalEvents), 1),
                fixed(mix.pct(mix.memoryOps()), 1),
                fixed(mix.pct(mix.controlOps()), 1),
                fixed(mix.pct(mix.indirectOps()), 2),
                withCommas(res.lockStats.totalAccesses()),
                withCommas(mem_bytes / 1024),
            });
        }
    }
    table.print(std::cout);
    return 0;
}
