/**
 * @file
 * jrs_run — the command-line front door to the workbench.
 *
 *   jrs_run <workload> [options]
 *
 *   --arg N           workload size (default: its bench size)
 *   --mode M          interp | jit | counter:N | oracle   (default jit)
 *   --sync S          thin | monitor-cache | one-bit      (default thin)
 *   --inline          enable JIT inlining/devirtualization
 *   --fold            enable interpreter dispatch folding
 *   --code-cache-bytes N   bound the JIT code cache (0 = unlimited)
 *   --code-cache-policy P  eviction policy: fifo | lru | cost | costpb
 *   --code-cache-alloc S   extent placement: first | best
 *   --osr-back-edges N     on-stack replacement threshold (0 = off)
 *   --shared-code-cache    fetch translations via a shared cache
 *   --report R[,R...] summary | mix | cache | bpred | ipc | locks | all
 *
 * Examples:
 *   jrs_run db --mode oracle --report summary,locks
 *   jrs_run jess --mode jit --inline --report mix,ipc
 *   jrs_run compress --mode interp --fold --report bpred
 */
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "arch/bpred/predictors.h"
#include "isa/trace_io.h"
#include "arch/cache/cache.h"
#include "arch/mix/instruction_mix.h"
#include "arch/pipeline/pipeline.h"
#include "harness/experiment.h"
#include "obs/cli.h"
#include "support/statistics.h"
#include "support/table.h"

using namespace jrs;

namespace {

struct Options {
    const WorkloadInfo *workload = nullptr;
    std::int32_t arg = 0;
    std::string mode = "jit";
    std::uint64_t counterThreshold = 8;
    SyncKind sync = SyncKind::ThinLock;
    bool inlining = false;
    bool folding = false;
    std::string report = "summary";
    std::string traceOut;
    obs::CodeCacheCli codeCacheCli;
};

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg != nullptr)
        std::cerr << "error: " << msg << "\n\n";
    std::cerr
        << "usage: jrs_run <workload> [--arg N] [--mode "
           "interp|jit|counter:N|oracle]\n"
           "               [--sync thin|monitor-cache|one-bit] "
           "[--inline] [--fold]\n"
           "               [--report summary,mix,cache,bpred,ipc,"
           "locks | all] [--trace-out F]\n              "
        << obs::CodeCacheCli::usageText() << "\n\nworkloads:";
    for (const WorkloadInfo &w : allWorkloads())
        std::cerr << ' ' << w.name;
    std::cerr << '\n';
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    if (argc < 2)
        usage();
    Options o;
    o.workload = findWorkload(argv[1]);
    if (o.workload == nullptr)
        usage("unknown workload");
    o.arg = o.workload->smallArg;
    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage("missing value");
            return argv[++i];
        };
        if (a == "--arg") {
            o.arg = std::atoi(next().c_str());
        } else if (a == "--mode") {
            o.mode = next();
            if (o.mode.rfind("counter:", 0) == 0) {
                o.counterThreshold = std::strtoull(
                    o.mode.c_str() + 8, nullptr, 10);
                o.mode = "counter";
            }
            if (o.mode != "interp" && o.mode != "jit"
                && o.mode != "counter" && o.mode != "oracle") {
                usage("bad --mode");
            }
        } else if (a == "--sync") {
            const std::string s = next();
            if (s == "thin")
                o.sync = SyncKind::ThinLock;
            else if (s == "monitor-cache")
                o.sync = SyncKind::MonitorCache;
            else if (s == "one-bit")
                o.sync = SyncKind::OneBitLock;
            else
                usage("bad --sync");
        } else if (a == "--inline") {
            o.inlining = true;
        } else if (a == "--fold") {
            o.folding = true;
        } else if (a == "--report") {
            o.report = next();
        } else if (a == "--trace-out") {
            o.traceOut = next();
        } else if (o.codeCacheCli.tryParse(a, next)) {
            // handled
        } else {
            usage("unknown option");
        }
    }
    if (o.report == "all")
        o.report = "summary,mix,cache,bpred,ipc,locks";
    return o;
}

bool
wants(const Options &o, const char *section)
{
    return ("," + o.report + ",").find(std::string(",") + section + ",")
        != std::string::npos;
}

std::shared_ptr<CompilationPolicy>
makePolicy(const Options &o, const Program &prog)
{
    if (o.mode == "interp")
        return std::make_shared<NeverCompilePolicy>();
    if (o.mode == "counter")
        return std::make_shared<CounterPolicy>(o.counterThreshold);
    if (o.mode == "oracle") {
        // Two profiling runs, then the derived per-method decisions.
        EngineConfig c1;
        c1.policy = std::make_shared<NeverCompilePolicy>();
        ExecutionEngine e1(prog, c1);
        const RunResult interp = e1.run(o.arg);
        EngineConfig c2;
        c2.policy = std::make_shared<AlwaysCompilePolicy>();
        ExecutionEngine e2(prog, c2);
        const RunResult jit = e2.run(o.arg);
        return std::make_shared<OraclePolicy>(
            computeOracleDecisions(interp.profiles, jit.profiles));
    }
    return std::make_shared<AlwaysCompilePolicy>();
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parse(argc, argv);
    const Program prog = o.workload->build();

    InstructionMix mix;
    CacheSink caches({64 * 1024, 32, 2, true},
                     {64 * 1024, 32, 4, true});
    PredictorBank bpred;
    PipelineConfig pc4;
    pc4.issueWidth = 4;
    PipelineSim pipe(pc4);
    MultiSink sinks;
    if (wants(o, "mix"))
        sinks.add(&mix);
    if (wants(o, "cache"))
        sinks.add(&caches);
    if (wants(o, "bpred"))
        sinks.add(&bpred);
    if (wants(o, "ipc"))
        sinks.add(&pipe);
    std::unique_ptr<TraceFileWriter> trace_writer;
    if (!o.traceOut.empty()) {
        trace_writer = std::make_unique<TraceFileWriter>(o.traceOut);
        sinks.add(trace_writer.get());
    }

    EngineConfig cfg;
    cfg.policy = makePolicy(o, prog);
    cfg.syncKind = o.sync;
    cfg.jitInlining = o.inlining;
    cfg.interpreterFolding = o.folding;
    o.codeCacheCli.apply(cfg);
    std::shared_ptr<SharedCodeCache> sharedCache;
    if (o.codeCacheCli.sharedCodeCache) {
        // One engine means every fetch is a first request, but the
        // path (and its accounting) is the same one the sweep
        // workers share.
        sharedCache = std::make_shared<SharedCodeCache>();
        cfg.sharedCodeCache = sharedCache;
        cfg.sharedProgramKey = o.workload->name;
    }
    cfg.sink = &sinks;
    ExecutionEngine engine(prog, cfg);
    const RunResult res = engine.run(o.arg);

    std::cout << o.workload->name << " arg=" << o.arg << " mode="
              << o.mode << " sync=" << syncKindName(o.sync)
              << (o.inlining ? " +inline" : "")
              << (o.folding ? " +fold" : "") << "\n";
    if (!res.completed) {
        std::cout << "FAILED: "
                  << (res.uncaughtException ? res.uncaughtException
                                            : "incomplete")
                  << "\n";
        return 1;
    }

    if (wants(o, "summary")) {
        std::cout << "\nchecksum " << res.exitValue << "\n"
                  << "simulated instructions "
                  << withCommas(res.totalEvents) << " (interp "
                  << fixed(percent(res.inPhase(Phase::Interpret),
                                   res.totalEvents), 1)
                  << "%, translate "
                  << fixed(percent(res.inPhase(Phase::Translate),
                                   res.totalEvents), 1)
                  << "%, native "
                  << fixed(percent(res.inPhase(Phase::NativeExec),
                                   res.totalEvents), 1)
                  << "%, runtime "
                  << fixed(percent(res.inPhase(Phase::Runtime),
                                   res.totalEvents), 1)
                  << "%)\nmethods compiled " << res.methodsCompiled
                  << ", call sites inlined " << res.callsInlined
                  << ", dispatches folded " << res.dispatchesFolded
                  << "\ncode cache: evictions "
                  << res.codeCacheEvictions << " ("
                  << withCommas(res.codeCacheBytesEvicted)
                  << " bytes), retranslations " << res.retranslations
                  << ", fragmentation "
                  << fixed(res.codeCacheFreeBytes == 0
                               ? 0.0
                               : static_cast<double>(
                                     res.codeCacheFreeExtents)
                                   / (static_cast<double>(
                                          res.codeCacheFreeBytes)
                                      / 1024.0),
                           2)
                  << "\nmemory: interp-equivalent "
                  << withCommas(res.memory.interpreterTotal() / 1024)
                  << " KiB, with JIT "
                  << withCommas(res.memory.jitTotal() / 1024)
                  << " KiB\n";
        if (sharedCache != nullptr) {
            std::cout << "shared cache: hits "
                      << res.sharedTranslationHits << ", misses "
                      << res.sharedTranslationMisses << ", build "
                      << withCommas(res.translateBuildNs)
                      << " ns, saved "
                      << withCommas(res.translateBuildNsSaved)
                      << " ns\n";
        }
    }
    if (wants(o, "mix")) {
        std::cout << "\ninstruction mix:\n";
        Table t({"category", "share%"});
        t.addRow({"memory", fixed(mix.pct(mix.memoryOps()), 2)});
        t.addRow({"int", fixed(mix.pct(mix.intOps()), 2)});
        t.addRow({"fp", fixed(mix.pct(mix.fpOps()), 2)});
        t.addRow({"control", fixed(mix.pct(mix.controlOps()), 2)});
        t.addRow({"indirect", fixed(mix.pct(mix.indirectOps()), 2)});
        t.print(std::cout);
    }
    if (wants(o, "cache")) {
        std::cout << "\nL1 (64K, 32B; I 2-way, D 4-way):\n";
        Table t({"cache", "refs", "misses", "miss%", "wmiss%"});
        const CacheStats &ic = caches.icache().stats();
        const CacheStats &dc = caches.dcache().stats();
        t.addRow({"I", withCommas(ic.accesses()),
                  withCommas(ic.misses()),
                  fixed(100.0 * ic.missRate(), 3), "-"});
        t.addRow({"D", withCommas(dc.accesses()),
                  withCommas(dc.misses()),
                  fixed(100.0 * dc.missRate(), 3),
                  fixed(100.0 * dc.writeMissFraction(), 1)});
        t.print(std::cout);
    }
    if (wants(o, "bpred")) {
        std::cout << "\nbranch prediction:\n";
        Table t({"scheme", "mispredict%"});
        for (const PredictorResult &r : bpred.results())
            t.addRow({r.name, fixed(100.0 * r.mispredictRate(), 2)});
        t.addRow({"(indirect via btb)",
                  fixed(percent(bpred.btbMisses(), bpred.indirects()),
                        2)});
        t.print(std::cout);
    }
    if (wants(o, "ipc")) {
        std::cout << "\npipeline (4-wide OOO): IPC "
                  << fixed(pipe.ipc(), 2) << " over "
                  << withCommas(pipe.cycles()) << " cycles, "
                  << withCommas(pipe.mispredicts())
                  << " mispredicts\n";
    }
    if (trace_writer) {
        std::cout << "trace: " << withCommas(
                         trace_writer->eventsWritten())
                  << " events -> " << o.traceOut << "\n";
    }
    if (wants(o, "locks")) {
        std::cout << "\nsynchronization (" << syncKindName(o.sync)
                  << "):\n";
        Table t({"case", "count"});
        for (std::size_t c = 0; c < kNumLockCases; ++c) {
            t.addRow({lockCaseName(static_cast<LockCase>(c)),
                      withCommas(res.lockStats.caseCount[c])});
        }
        t.addRow({"total cycles",
                  withCommas(res.lockStats.simCycles)});
        t.addRow({"blocks", withCommas(res.lockStats.blocks)});
        t.print(std::cout);
    }
    return 0;
}
