/**
 * @file
 * jrs_bench — self-profiled benchmark regression harness.
 *
 * Everything else in the tree measures the *simulated* machine; this
 * binary measures the simulator itself. It executes a fixed workload
 * matrix, timing each step with obs::HostStats (wall-clock per named
 * section, simulated instructions pushed through per host second,
 * peak RSS), and emits a stable "jrs-bench-v1" report (prof/bench.h)
 * that can be committed as a throughput trajectory and gated on:
 *
 *   jrs_bench --suite vm --json bench/BENCH_vm.json
 *   jrs_bench --compare bench/BENCH_prof.json --max-regress 30
 *
 *   --suite NAME     vm | sweep | gc | prof | shared_cache | all
 *                    (default: all)
 *                    vm    — live VM record throughput, every
 *                            workload × {interp, jit}
 *                    sweep — fig07 grid, cold vs warm replay
 *                    gc    — GC grid throughput + collection counts
 *                    prof  — replay overhead: bare pipeline vs
 *                            attribution vs calling-context profiler
 *                            vs sampling profiler
 *                    shared_cache — code_cache grid with private vs
 *                            shared translation at 1/2/4/8 workers:
 *                            host translate ns, shared-hit rate,
 *                            events/sec
 *   --tiny           use each workload's tinyArg (vm/prof suites)
 *   --jobs N         sweep worker threads (sweep/gc suites)
 *   --json FILE      merge this run's entries into a jrs-bench-v1
 *                    trajectory file (same-label entries replaced)
 *   --compare BASE   compare against a baseline jrs-bench-v1 file;
 *                    exits non-zero when any shared label's
 *                    events_per_sec regressed beyond the threshold
 *   --max-regress P  regression threshold in percent (default: 20)
 *
 * The figure of merit is events_per_sec — simulated instructions per
 * host second — which is roughly workload-size independent, so a
 * --tiny run can still be compared against a full-size baseline with
 * a generous threshold.
 */
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "arch/pipeline/pipeline.h"
#include "harness/experiment.h"
#include "obs/host_stats.h"
#include "obs/perf.h"
#include "prof/bench.h"
#include "prof/cct.h"
#include "prof/sampler.h"
#include "support/statistics.h"
#include "support/table.h"
#include "sweep/grids.h"
#include "sweep/sweep.h"
#include "vm/engine/policy.h"
#include "vm/runtime/vm_error.h"
#include "workloads/workload.h"

using namespace jrs;

namespace {

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg != nullptr)
        std::cerr << "error: " << msg << "\n\n";
    std::cerr << "usage: jrs_bench [--suite "
                 "vm|sweep|gc|prof|shared_cache|all]"
                 " [--tiny] [--jobs N]\n"
                 "                 [--json FILE] [--compare BASE]"
                 " [--max-regress PCT]\n";
    std::exit(2);
}

struct Args {
    std::string suite = "all";
    bool tiny = false;
    unsigned jobs = 0;
    std::string jsonPath;
    std::string comparePath;
    double maxRegressPct = 20.0;
};

Args
parseArgs(int argc, char **argv)
{
    Args out;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage("missing value");
            return argv[++i];
        };
        if (a == "--suite") {
            out.suite = next();
        } else if (a == "--tiny") {
            out.tiny = true;
        } else if (a == "--jobs") {
            const std::string v = next();
            char *end = nullptr;
            out.jobs = static_cast<unsigned>(
                std::strtoul(v.c_str(), &end, 10));
            if (end == v.c_str() || *end != '\0')
                usage("--jobs expects a number");
        } else if (a == "--json") {
            out.jsonPath = next();
        } else if (a == "--compare") {
            out.comparePath = next();
        } else if (a == "--max-regress") {
            const std::string v = next();
            char *end = nullptr;
            out.maxRegressPct = std::strtod(v.c_str(), &end);
            if (end == v.c_str() || *end != '\0'
                || out.maxRegressPct < 0) {
                usage("--max-regress expects a percentage");
            }
        } else {
            usage("unknown option");
        }
    }
    if (out.suite != "vm" && out.suite != "sweep" && out.suite != "gc"
        && out.suite != "prof" && out.suite != "shared_cache"
        && out.suite != "all") {
        usage("unknown --suite");
    }
    return out;
}

/** Shared state every suite writes into. */
struct Bench {
    const Args &args;
    obs::HostStats host;
    prof::BenchReport report;
};

/** Record one timed step as a jrs-bench-v1 run entry. */
prof::BenchRun &
addRun(Bench &b, std::string label, std::uint64_t events,
       double seconds)
{
    prof::BenchRun run;
    run.label = std::move(label);
    run.events = events;
    run.wallSeconds = seconds;
    run.eventsPerSec =
        seconds > 0 ? static_cast<double>(events) / seconds : 0;
    run.peakRssBytes = obs::HostStats::peakRssBytes();
    b.report.upsert(std::move(run));
    return b.report.runs.back();
}

/** The last HostStats entry for @p section, as a run entry. */
prof::BenchRun &
addSectionRun(Bench &b, const std::string &section)
{
    const obs::HostStats::Totals t = b.host.section(section);
    return addRun(b, section, t.events, t.seconds);
}

/** vm: live VM record throughput, every workload × {interp, jit}. */
void
suiteVm(Bench &b)
{
    for (const WorkloadInfo &w : allWorkloads()) {
        for (const bool jit : {false, true}) {
            const std::string label = std::string("vm/") + w.name
                + (jit ? "/jit" : "/interp");
            RunSpec spec;
            spec.workload = &w;
            spec.arg = b.args.tiny ? w.tinyArg : w.smallArg;
            spec.policy = jit
                ? std::static_pointer_cast<CompilationPolicy>(
                      std::make_shared<AlwaysCompilePolicy>())
                : std::static_pointer_cast<CompilationPolicy>(
                      std::make_shared<NeverCompilePolicy>());
            std::uint64_t events = 0;
            {
                obs::HostStats::Section s(b.host, label, &events);
                const RecordedRun rec = recordWorkload(spec);
                events = rec.result.totalEvents;
            }
            addSectionRun(b, label);
        }
    }
}

/** Sum of per-point stream events across a finished sweep. */
std::uint64_t
sweepEvents(const sweep::SweepResult &result)
{
    std::uint64_t total = 0;
    for (const sweep::PointResult &p : result.points)
        total += p.traceEvents;
    return total;
}

/** sweep: fig07 grid, cold record vs warm in-memory replay. */
void
suiteSweep(Bench &b)
{
    sweep::SweepOptions opts;
    opts.jobs = b.args.jobs;
    sweep::SweepEngine engine(opts);
    std::uint64_t events = 0;
    {
        obs::HostStats::Section s(b.host, "sweep/fig07/cold", &events);
        const sweep::SweepResult cold =
            engine.run(sweep::buildFig07Grid());
        if (!cold.allOk())
            throw VmError("sweep suite: cold fig07 run failed");
        events = sweepEvents(cold);
    }
    addSectionRun(b, "sweep/fig07/cold");
    events = 0;
    {
        obs::HostStats::Section s(b.host, "sweep/fig07/warm", &events);
        const sweep::SweepResult warm =
            engine.run(sweep::buildFig07Grid());
        if (!warm.allOk())
            throw VmError("sweep suite: warm fig07 run failed");
        events = sweepEvents(warm);
    }
    addSectionRun(b, "sweep/fig07/warm");
}

/** gc: the GC grid's host throughput plus collection counts. */
void
suiteGc(Bench &b)
{
    sweep::SweepOptions opts;
    opts.jobs = b.args.jobs;
    sweep::SweepEngine engine(opts);
    std::uint64_t events = 0;
    double collections = 0, gcEvents = 0;
    {
        obs::HostStats::Section s(b.host, "gc/grid", &events);
        const sweep::SweepResult result =
            engine.run(sweep::buildGcGrid());
        if (!result.allOk())
            throw VmError("gc suite: grid run failed");
        events = sweepEvents(result);
        for (const sweep::PointResult &p : result.points) {
            collections += p.metric("collections");
            gcEvents += p.metric("gc_events");
        }
    }
    prof::BenchRun &run = addSectionRun(b, "gc/grid");
    run.metrics.emplace_back("collections", collections);
    run.metrics.emplace_back("gc_events", gcEvents);
}

/** prof: replay overhead of the observability pipelines. */
void
suiteProf(Bench &b)
{
    const WorkloadInfo *w = findWorkload("compress");
    if (w == nullptr)
        throw VmError("prof suite: compress workload missing");
    RunSpec spec;
    spec.workload = w;
    spec.arg = b.args.tiny ? w->tinyArg : w->smallArg;
    RecordedRun rec;
    std::uint64_t recEvents = 0;
    {
        obs::HostStats::Section s(b.host, "prof/record", &recEvents);
        rec = recordWorkload(spec);
        recEvents = rec.result.totalEvents;
    }
    addSectionRun(b, "prof/record");
    const std::uint64_t events = rec.result.totalEvents;
    // The same stream replayed three ways; each entry's relative
    // events_per_sec is the observer's overhead.
    double pipeSeconds = 0;
    {
        obs::HostStats::Section s(b.host, "prof/replay/pipeline",
                                  &events);
        PipelineSim pipe{PipelineConfig{}};
        rec.trace->replay(pipe);
    }
    pipeSeconds = b.host.section("prof/replay/pipeline").seconds;
    addSectionRun(b, "prof/replay/pipeline");
    {
        obs::HostStats::Section s(b.host, "prof/replay/attributed",
                                  &events);
        obs::AttributedPipeline attributed(PipelineConfig{},
                                           rec.methods);
        rec.trace->replay(attributed);
    }
    {
        prof::BenchRun &run =
            addSectionRun(b, "prof/replay/attributed");
        const double sec = run.wallSeconds;
        if (pipeSeconds > 0)
            run.metrics.emplace_back("overhead_vs_pipeline",
                                     sec / pipeSeconds);
    }
    {
        obs::HostStats::Section s(b.host, "prof/replay/cct", &events);
        prof::CctPipeline cct(PipelineConfig{}, rec.methods);
        rec.trace->replay(cct);
    }
    {
        prof::BenchRun &run = addSectionRun(b, "prof/replay/cct");
        const double sec = run.wallSeconds;
        if (pipeSeconds > 0)
            run.metrics.emplace_back("overhead_vs_pipeline",
                                     sec / pipeSeconds);
    }
    std::uint64_t samples = 0;
    {
        obs::HostStats::Section s(b.host, "prof/replay/sampled",
                                  &events);
        prof::SamplePipeline sp(PipelineConfig{}, rec.methods);
        rec.trace->replay(sp);
        samples = sp.sampler().samples();
    }
    {
        prof::BenchRun &run = addSectionRun(b, "prof/replay/sampled");
        const double sec = run.wallSeconds;
        if (pipeSeconds > 0)
            run.metrics.emplace_back("overhead_vs_pipeline",
                                     sec / pipeSeconds);
        run.metrics.emplace_back("samples",
                                 static_cast<double>(samples));
    }
}

/**
 * shared_cache: the code_cache grid (18 cache configurations per
 * workload, one VM per trace group) run with private translation and
 * again with one process-wide SharedCodeCache, at 1/2/4/8 workers.
 * All 36 configuration pairs consume the same programs, so shared
 * runs build each (program, method) once and every other group
 * attaches — the translate_build_ns drop (and hit rate) is the
 * benchmark. Streams are bit-identical either way; events match by
 * construction.
 *
 * The grid always runs at tinyArg: translation work is input-size
 * independent (the same methods compile either way), and eight full
 * grid sweeps at bench size would be all simulation time.
 */
std::vector<sweep::SweepPoint>
sharedCacheGrid()
{
    std::vector<sweep::SweepPoint> grid = sweep::buildCodeCacheGrid();
    for (sweep::SweepPoint &p : grid) {
        const WorkloadInfo *w = findWorkload(p.key.workload);
        if (w != nullptr)
            p.key.arg = w->tinyArg;
    }
    return grid;
}

void
suiteSharedCache(Bench &b)
{
    for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
        const std::string tag = "/j" + std::to_string(jobs);
        std::uint64_t events = 0;
        {
            const std::string label = "shared_cache/private" + tag;
            sweep::SweepOptions opts;
            opts.jobs = jobs;
            sweep::SweepEngine engine(opts);
            std::uint64_t buildNs = 0;
            {
                obs::HostStats::Section s(b.host, label, &events);
                const sweep::SweepResult result =
                    engine.run(sharedCacheGrid());
                if (!result.allOk())
                    throw VmError(
                        "shared_cache suite: private run failed");
                events = sweepEvents(result);
                buildNs = result.traces.translateBuildNs;
            }
            prof::BenchRun &run = addSectionRun(b, label);
            run.metrics.emplace_back("translate_build_ns",
                                     static_cast<double>(buildNs));
        }
        {
            const std::string label = "shared_cache/shared" + tag;
            sweep::SweepOptions opts;
            opts.jobs = jobs;
            opts.sharedCache = std::make_shared<SharedCodeCache>();
            sweep::SweepEngine engine(opts);
            sweep::SweepResult result;
            {
                obs::HostStats::Section s(b.host, label, &events);
                result = engine.run(sharedCacheGrid());
                if (!result.allOk())
                    throw VmError(
                        "shared_cache suite: shared run failed");
                events = sweepEvents(result);
            }
            prof::BenchRun &run = addSectionRun(b, label);
            const SharedCacheStats &s = result.shared;
            run.metrics.emplace_back(
                "translate_build_ns",
                static_cast<double>(result.traces.translateBuildNs));
            run.metrics.emplace_back(
                "shared_hits", static_cast<double>(s.sharedHits));
            run.metrics.emplace_back(
                "shared_builds", static_cast<double>(s.misses));
            run.metrics.emplace_back(
                "shared_hit_rate",
                s.lookups > 0 ? static_cast<double>(s.sharedHits)
                        / static_cast<double>(s.lookups)
                              : 0.0);
            run.metrics.emplace_back(
                "build_ns_saved",
                static_cast<double>(s.buildNsSaved));
        }
    }
}

void
printSelfProfile(const Bench &b)
{
    Table t({"section", "seconds", "events", "M events/s"});
    for (const auto &[name, totals] : b.host.sections()) {
        t.addRow({name, fixed(totals.seconds, 4),
                  withCommas(totals.events),
                  fixed(totals.eventsPerSec() / 1e6, 2)});
    }
    t.print(std::cout);
    std::cout << "total " << fixed(b.host.totalSeconds(), 4)
              << "s, peak RSS "
              << withCommas(obs::HostStats::peakRssBytes())
              << " bytes\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parseArgs(argc, argv);
    Bench b{args, {}, {}};
    b.report.suite = args.suite;

    try {
        if (args.suite == "vm" || args.suite == "all")
            suiteVm(b);
        if (args.suite == "sweep" || args.suite == "all")
            suiteSweep(b);
        if (args.suite == "gc" || args.suite == "all")
            suiteGc(b);
        if (args.suite == "prof" || args.suite == "all")
            suiteProf(b);
        if (args.suite == "shared_cache" || args.suite == "all")
            suiteSharedCache(b);
    } catch (const VmError &e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }

    printSelfProfile(b);

    if (!args.jsonPath.empty()) {
        try {
            prof::BenchReport merged = prof::BenchReport::loadOrEmpty(
                args.jsonPath, args.suite);
            for (const prof::BenchRun &run : b.report.runs)
                merged.upsert(run);
            merged.writeJson(args.jsonPath);
        } catch (const VmError &e) {
            std::cerr << "error: " << e.what() << '\n';
            return 1;
        }
        std::cout << "wrote " << args.jsonPath << '\n';
    }

    if (!args.comparePath.empty()) {
        prof::BenchReport baseline;
        try {
            baseline = prof::BenchReport::load(args.comparePath);
        } catch (const VmError &e) {
            std::cerr << "error: " << e.what() << '\n';
            return 1;
        }
        const prof::CompareResult cmp =
            prof::compareReports(baseline, b.report,
                                 args.maxRegressPct);
        std::cout << '\n'
                  << "compare vs " << args.comparePath << " (max "
                  << fixed(args.maxRegressPct, 1) << "% regression):\n"
                  << cmp.text(args.maxRegressPct);
        if (!cmp.onlyBaseline.empty()) {
            // A baseline label with no current counterpart cannot be
            // gated; make the gap loud instead of silently passing.
            std::cerr << "warning: " << cmp.onlyBaseline.size()
                      << " baseline label(s) were not produced by"
                         " this run and were not compared:\n";
            for (const std::string &l : cmp.onlyBaseline)
                std::cerr << "  " << l << '\n';
        }
        if (cmp.failed)
            return 1;
    }
    return 0;
}
