/**
 * @file
 * jrs_perf — per-method / per-bytecode microarchitectural attribution
 * for one workload run.
 *
 * Records a workload's dynamic native stream, replays it through an
 * architecture model with a perf-attribution pass attached
 * (obs/perf.h), and reports where the cycles, cache misses and branch
 * mispredicts went — per method, per opcode, and per bytecode site.
 *
 *   jrs_perf report <workload> [options]    top-N method/opcode tables
 *   jrs_perf annotate <workload> [options]  per-bytecode-site view
 *
 *   --mode interp|jit|counter:N  execution mode (default: jit for
 *                                report, interp for annotate)
 *   --arg N                      workload argument (default: smallArg)
 *   --tiny                       use the workload's tinyArg instead
 *   --model pipeline|cache       attribute the out-of-order pipeline
 *                                (CPI stacks; default) or a bare
 *                                split L1 (miss profiles only)
 *   --top N                      rows per table (default: 10)
 *   --window N                   also sample an interval timeline
 *                                every N trace events
 *   --method NAME                annotate: which method (default: the
 *                                hottest method with executed sites)
 *   --metrics-json FILE          write a jrs-metrics-v1 snapshot
 *   --trace-json FILE            write Chrome trace-event JSON; with
 *                                --window the timeline is included as
 *                                Perfetto counter tracks
 *   --perf-json FILE             write the jrs-perf-report-v1 report
 *   --cct-json FILE              write a jrs-cct-v1 calling-context
 *                                tree (extra replay through a
 *                                CCT-observed pipeline; its totals are
 *                                cross-checked like everything else)
 *   --flame FILE                 folded stacks (flamegraph.pl input)
 *   --sample-json FILE           write a jrs-sample-v1 sampled profile
 *                                (extra replay through a sampling-
 *                                observed pipeline; the model's totals
 *                                must match the exact replay exactly)
 *   --sample-period N            mean cycles between samples
 *   --sample-seed N              sampling PRNG seed
 *
 * The tool always cross-checks its tables against the model's own
 * aggregate statistics (event counts, cache accesses/misses,
 * branch/indirect predictions, total cycles) and exits nonzero on any
 * mismatch, so a passing run is itself a conservation proof.
 *
 * Examples:
 *   jrs_perf report compress
 *   jrs_perf report db --mode interp --window 50000
 *   jrs_perf annotate jess --method jess.fire
 */
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "arch/cache/cache.h"
#include "arch/pipeline/pipeline.h"
#include "isa/trace_buffer.h"
#include "obs/cli.h"
#include "obs/obs.h"
#include "obs/perf.h"
#include "prof/cct.h"
#include "prof/sampler.h"
#include "support/statistics.h"
#include "vm/engine/engine.h"
#include "vm/engine/policy.h"
#include "workloads/workload.h"

using namespace jrs;

namespace {

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg != nullptr)
        std::cerr << "error: " << msg << "\n\n";
    std::cerr << "usage: jrs_perf <report|annotate> <workload>"
                 " [--mode interp|jit|counter:N] [--arg N] [--tiny]"
                 " [--model pipeline|cache] [--top N] [--window N]"
                 " [--method NAME]"
              << obs::GcCli::usageText()
              << obs::CodeCacheCli::usageText()
              << obs::ObsCli::usageText()
              << "\n\nworkloads:\n";
    for (const WorkloadInfo &w : allWorkloads())
        std::cerr << "  " << w.name << " — " << w.description << '\n';
    std::exit(2);
}

std::shared_ptr<CompilationPolicy>
parseMode(const std::string &mode)
{
    if (mode == "interp")
        return std::make_shared<NeverCompilePolicy>();
    if (mode == "jit")
        return std::make_shared<AlwaysCompilePolicy>();
    if (mode.rfind("counter:", 0) == 0) {
        const std::string v = mode.substr(8);
        char *end = nullptr;
        const unsigned long n = std::strtoul(v.c_str(), &end, 10);
        if (end == v.c_str() || *end != '\0')
            usage("counter mode expects counter:N");
        return std::make_shared<CounterPolicy>(
            static_cast<std::uint64_t>(n));
    }
    usage("unknown --mode (expect interp, jit, or counter:N)");
}

std::uint64_t
parseU64(const std::string &v, const char *what)
{
    char *end = nullptr;
    const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0') {
        std::cerr << "error: " << what << " expects a number\n";
        std::exit(2);
    }
    return n;
}

/** One bit-for-bit comparison; prints and records any mismatch. */
bool
expectEq(const char *what, std::uint64_t got, std::uint64_t want)
{
    if (got == want)
        return true;
    std::cerr << "conservation mismatch: " << what << " = " << got
              << ", model reports " << want << '\n';
    return false;
}

/**
 * Phase cells partition the stream too: mutator phases plus the
 * Phase::Gc collector cell must reproduce the totals bit-for-bit, so
 * the mutator-vs-collector CPI split is itself conserved.
 */
bool
checkPhaseSums(const obs::PerfAttribution &perf)
{
    obs::PerfCell sum;
    for (std::size_t p = 0; p < kNumPhases; ++p)
        sum.merge(perf.phaseCell(static_cast<Phase>(p)));
    bool ok = expectEq("sum(phase insts)", sum.insts,
                       perf.totals().insts);
    for (std::size_t k = 0; k < kNumPerfKinds; ++k) {
        const auto kind = static_cast<PerfKind>(k);
        ok &= expectEq(perfKindName(kind), sum.access[k],
                       perf.totals().access[k]);
        ok &= expectEq(perfKindName(kind), sum.bad[k],
                       perf.totals().bad[k]);
    }
    ok &= expectEq("sum(phase cycles)", sum.cycles(),
                   perf.totals().cycles());
    return ok;
}

/**
 * Per-method cells (including the unattributed bucket) must sum to
 * the totals cell, counter by counter.
 */
bool
checkMethodSums(const obs::PerfAttribution &perf)
{
    obs::PerfCell sum;
    for (std::size_t row = 0; row <= perf.map().rows(); ++row)
        sum.merge(perf.methodCell(row));
    bool ok = expectEq("sum(method insts)", sum.insts,
                       perf.totals().insts);
    for (std::size_t k = 0; k < kNumPerfKinds; ++k) {
        const auto kind = static_cast<PerfKind>(k);
        ok &= expectEq(perfKindName(kind), sum.access[k],
                       perf.totals().access[k]);
        ok &= expectEq(perfKindName(kind), sum.bad[k],
                       perf.totals().bad[k]);
    }
    ok &= expectEq("sum(method cycles)", sum.cycles(),
                   perf.totals().cycles());
    return ok && checkPhaseSums(perf);
}

/** Totals vs the pipeline model's own aggregate statistics. */
bool
checkPipeline(const obs::PerfAttribution &perf, const PipelineSim &p)
{
    const obs::PerfCell &t = perf.totals();
    const auto k = [](PerfKind kind) {
        return static_cast<std::size_t>(kind);
    };
    bool ok = expectEq("events", perf.totalEvents(), p.instructions());
    ok &= expectEq("cycles", t.cycles(), p.cycles());
    ok &= expectEq("icache accesses", t.access[k(PerfKind::ICacheFetch)],
                   p.icache().stats().reads);
    ok &= expectEq("icache misses", t.bad[k(PerfKind::ICacheFetch)],
                   p.icache().stats().readMisses);
    ok &= expectEq("dcache loads", t.access[k(PerfKind::DCacheLoad)],
                   p.dcache().stats().reads);
    ok &= expectEq("dcache load misses", t.bad[k(PerfKind::DCacheLoad)],
                   p.dcache().stats().readMisses);
    ok &= expectEq("dcache stores", t.access[k(PerfKind::DCacheStore)],
                   p.dcache().stats().writes);
    ok &= expectEq("dcache store misses",
                   t.bad[k(PerfKind::DCacheStore)],
                   p.dcache().stats().writeMisses);
    ok &= expectEq("cond branches", t.access[k(PerfKind::CondBranch)],
                   p.condBranches());
    ok &= expectEq("cond mispredicts", t.bad[k(PerfKind::CondBranch)],
                   p.condMispredicts());
    ok &= expectEq("indirects", t.access[k(PerfKind::IndirectTarget)],
                   p.indirects());
    ok &= expectEq("indirect mispredicts",
                   t.bad[k(PerfKind::IndirectTarget)],
                   p.indirectMispredicts());
    return ok && checkMethodSums(perf);
}

/** Totals vs a bare split L1's statistics (no cycle model). */
bool
checkCaches(const obs::PerfAttribution &perf, const CacheSink &c)
{
    const obs::PerfCell &t = perf.totals();
    const auto k = [](PerfKind kind) {
        return static_cast<std::size_t>(kind);
    };
    bool ok =
        expectEq("icache accesses", t.access[k(PerfKind::ICacheFetch)],
                 c.icache().stats().reads);
    ok &= expectEq("icache misses", t.bad[k(PerfKind::ICacheFetch)],
                   c.icache().stats().readMisses);
    ok &= expectEq("dcache loads", t.access[k(PerfKind::DCacheLoad)],
                   c.dcache().stats().reads);
    ok &= expectEq("dcache load misses", t.bad[k(PerfKind::DCacheLoad)],
                   c.dcache().stats().readMisses);
    ok &= expectEq("dcache stores", t.access[k(PerfKind::DCacheStore)],
                   c.dcache().stats().writes);
    ok &= expectEq("dcache store misses",
                   t.bad[k(PerfKind::DCacheStore)],
                   c.dcache().stats().writeMisses);
    return ok && checkMethodSums(perf);
}

/** The method annotate shows when --method was not given: hottest
    (by attributed cycles, then events) with executed bytecode sites. */
std::string
defaultAnnotateTarget(const obs::PerfAttribution &perf)
{
    std::string best;
    std::uint64_t bestCycles = 0;
    std::uint64_t bestInsts = 0;
    for (std::size_t row = 0; row < perf.map().rows(); ++row) {
        const obs::PerfCell &cell = perf.methodCell(row);
        const std::string &name = perf.map().name(static_cast<int>(row));
        if (perf.annotateTable(name).numRows() == 0)
            continue;
        if (best.empty() || cell.cycles() > bestCycles
            || (cell.cycles() == bestCycles
                && cell.insts > bestInsts)) {
            best = name;
            bestCycles = cell.cycles();
            bestInsts = cell.insts;
        }
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        usage();
    const std::string command = argv[1];
    if (command != "report" && command != "annotate")
        usage("unknown command (expect report or annotate)");
    const WorkloadInfo *w = findWorkload(argv[2]);
    if (w == nullptr)
        usage("unknown workload");

    // Interpreted runs have bytecode sites to annotate; JIT runs are
    // the interesting default for whole-method CPI stacks.
    std::string mode = command == "annotate" ? "interp" : "jit";
    std::int32_t arg = w->smallArg;
    std::string model = "pipeline";
    std::size_t topN = 10;
    std::uint64_t window = 0;
    std::string methodName;
    obs::ObsCli cli;
    obs::GcCli gcCli;
    obs::CodeCacheCli ccCli;
    for (int i = 3; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage("missing value");
            return argv[++i];
        };
        if (a == "--mode") {
            mode = next();
        } else if (a == "--arg") {
            arg = static_cast<std::int32_t>(
                parseU64(next(), "--arg"));
        } else if (a == "--tiny") {
            arg = w->tinyArg;
        } else if (a == "--model") {
            model = next();
            if (model != "pipeline" && model != "cache")
                usage("--model expects pipeline or cache");
        } else if (a == "--top") {
            topN = parseU64(next(), "--top");
        } else if (a == "--window") {
            window = parseU64(next(), "--window");
        } else if (a == "--method") {
            methodName = next();
        } else if (cli.tryParse(a, next)
                   || gcCli.tryParse(a, next)
                   || ccCli.tryParse(a, next)) {
            continue;
        } else {
            usage("unknown option");
        }
    }

    cli.setup();

    // Record the run once (the Shade step), then attribute offline.
    const Program prog = w->build();
    EngineConfig cfg;
    cfg.policy = parseMode(mode);
    gcCli.apply(cfg);
    ccCli.apply(cfg);
    std::shared_ptr<SharedCodeCache> sharedCache;
    if (ccCli.sharedCodeCache) {
        sharedCache = std::make_shared<SharedCodeCache>();
        cfg.sharedCodeCache = sharedCache;
        cfg.sharedProgramKey = w->name;
    }
    TraceBuffer buffer;
    cfg.sink = &buffer;
    ExecutionEngine engine(prog, cfg);
    const RunResult res = engine.run(arg);
    if (!res.completed) {
        std::cerr << w->name << " did not complete: "
                  << (res.uncaughtException != nullptr
                          ? res.uncaughtException
                          : "unknown")
                  << '\n';
        return 1;
    }
    const auto map = std::make_shared<const obs::MethodMap>(
        obs::MethodMap::forRun(engine.registry(), engine.codeCache()));

    obs::PerfOptions popt;
    popt.timelineWindow = window;
    popt.program = &prog;

    // Replay through the chosen model with attribution attached; keep
    // whichever composite was built alive for the conservation check.
    std::unique_ptr<obs::AttributedPipeline> pipe;
    std::unique_ptr<obs::AttributedCaches> caches;
    if (model == "pipeline") {
        pipe = std::make_unique<obs::AttributedPipeline>(
            PipelineConfig{}, map, popt);
        buffer.replay(*pipe);
    } else {
        caches = std::make_unique<obs::AttributedCaches>(
            CacheConfig{}, CacheConfig{}, map, popt);
        buffer.replay(*caches);
    }
    const obs::PerfAttribution &perf =
        pipe != nullptr ? pipe->perf() : caches->perf();

    std::cout << w->name << " --mode " << mode << " --arg " << arg
              << " (" << model << " model): exit=" << res.exitValue
              << ", " << withCommas(perf.totalEvents()) << " events";
    if (pipe != nullptr) {
        std::cout << ", " << withCommas(pipe->pipeline().cycles())
                  << " cycles, IPC "
                  << fixed(pipe->pipeline().ipc(), 3);
    }
    if (gcCli.enabled()) {
        std::cout << ", " << gc::collectorName(cfg.gc.collector)
                  << ": " << res.gcStats.collections
                  << " collections / "
                  << withCommas(res.gcStats.gcEvents)
                  << " collector events";
    }
    std::cout << '\n';

    if (command == "report") {
        std::cout << "\nper-phase attribution (mutator vs "
                     "collector):\n";
        perf.phaseTable().print(std::cout);
        std::cout << "\nper-method attribution (top " << topN
                  << " by cycles):\n";
        perf.methodTable(topN).print(std::cout);
        if (perf.hasOpcodes()) {
            Table ops = perf.opcodeTable(topN);
            if (ops.numRows() > 0) {
                std::cout << "\nper-opcode attribution (top " << topN
                          << " by events, interpreted only):\n";
                ops.print(std::cout);
            }
        }
        if (window != 0) {
            std::cout << "\ntimeline: " << perf.timeline().size()
                      << " windows of " << withCommas(window)
                      << " events\n";
        }
    } else {
        std::string target = methodName;
        if (target.empty()) {
            target = defaultAnnotateTarget(perf);
            if (target.empty()) {
                std::cerr << "no interpreted bytecode sites to "
                             "annotate (try --mode interp)\n";
                return 1;
            }
        }
        Table t = perf.annotateTable(target);
        if (t.numRows() == 0) {
            std::cerr << "no executed bytecode sites for method '"
                      << target << "' (try --mode interp, and see "
                      << "the method column of `jrs_perf report`)\n";
            return 1;
        }
        std::cout << "\nper-bytecode attribution of " << target
                  << ":\n";
        t.print(std::cout);
    }

    bool conserved = pipe != nullptr
        ? checkPipeline(perf, pipe->pipeline())
        : checkCaches(perf, caches->caches());

    if (cli.cctRequested()) {
        // One more replay, through the calling-context profiler; its
        // node totals must partition the pipeline's cycles exactly.
        prof::CctPipeline cct(PipelineConfig{}, map);
        buffer.replay(cct);
        conserved &= expectEq("cct events", cct.cct().totalEvents(),
                              cct.pipeline().instructions());
        conserved &= expectEq("cct cycles", cct.cct().totalCycles(),
                              cct.pipeline().cycles());
        std::uint64_t nodeCycles = 0;
        std::uint64_t nodeEvents = 0;
        for (const prof::CctNode &n : cct.cct().nodes()) {
            nodeCycles += n.cycles();
            nodeEvents += n.events;
        }
        conserved &= expectEq("sum(cct node cycles)", nodeCycles,
                              cct.pipeline().cycles());
        conserved &= expectEq("sum(cct node events)", nodeEvents,
                              cct.pipeline().instructions());
        prof::CctReportSet cctReports;
        cctReports.add(std::string(w->name) + "/" + mode, cct.cct());
        cli.writeCct(cctReports, std::cout);
    }

    if (cli.sampleRequested()) {
        // One more replay, through the sampling profiler; sampling is
        // read-only, so this model must agree with the exact one.
        prof::SamplePipeline sp(PipelineConfig{}, map,
                                cli.sampleOptions());
        buffer.replay(sp);
        if (pipe != nullptr) {
            conserved &= expectEq("sampled-replay cycles",
                                  sp.pipeline().cycles(),
                                  pipe->pipeline().cycles());
        }
        std::cout << "\nsampled profile: "
                  << withCommas(sp.sampler().samples())
                  << " samples (period "
                  << sp.sampler().options().period << ", seed "
                  << sp.sampler().options().seed << ")\n";
        prof::SampleReportSet sampleReports;
        sampleReports.add(std::string(w->name) + "/" + mode,
                          sp.sampler());
        cli.writeSample(sampleReports, std::cout);
    }

    std::cout << "\nconservation vs model aggregates: "
              << (conserved ? "OK" : "FAILED") << '\n';

    if (window != 0 && !cli.traceJson.empty())
        perf.emitCounterTracks(obs::tracer(), w->name);
    obs::PerfReportSet reports;
    reports.add(std::string(w->name) + "/" + mode, perf);
    cli.writePerf(reports, std::cout);
    cli.finish(std::cout);
    return conserved ? 0 : 1;
}
