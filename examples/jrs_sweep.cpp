/**
 * @file
 * jrs_sweep — run a named experiment grid on the sweep engine.
 *
 *   jrs_sweep <grid> [options]
 *   jrs_sweep --list
 *
 *   --jobs N         worker threads (default: hardware concurrency)
 *   --json FILE      write the SweepResult as JSON
 *   --cache-dir DIR  on-disk trace cache; a second invocation with
 *                    the same DIR replays recorded streams instead of
 *                    re-running the VM
 *   --quiet          suppress the per-point table
 *
 * Examples:
 *   jrs_sweep fig07 --jobs 8
 *   jrs_sweep all --cache-dir /tmp/jrs-traces --json sweep.json
 */
#include <cstdlib>
#include <iostream>

#include "support/statistics.h"
#include "sweep/grids.h"

using namespace jrs;

namespace {

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg != nullptr)
        std::cerr << "error: " << msg << "\n\n";
    std::cerr << "usage: jrs_sweep <grid> [--jobs N] [--json FILE]"
                 " [--cache-dir DIR] [--quiet]\n"
                 "       jrs_sweep --list\n\ngrids:\n";
    for (const sweep::NamedGrid &g : sweep::allGrids())
        std::cerr << "  " << g.name << " — " << g.description << '\n';
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string first = argv[1];
    if (first == "--list") {
        for (const sweep::NamedGrid &g : sweep::allGrids())
            std::cout << g.name << " — " << g.description << '\n';
        return 0;
    }
    const sweep::NamedGrid *grid = sweep::findGrid(first);
    if (grid == nullptr)
        usage("unknown grid");

    sweep::SweepOptions opts;
    std::string jsonPath;
    bool quiet = false;
    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage("missing value");
            return argv[++i];
        };
        if (a == "--jobs") {
            const std::string v = next();
            char *end = nullptr;
            opts.jobs = static_cast<unsigned>(
                std::strtoul(v.c_str(), &end, 10));
            if (end == v.c_str() || *end != '\0')
                usage("--jobs expects a number");
        } else if (a == "--json") {
            jsonPath = next();
        } else if (a == "--cache-dir") {
            opts.cacheDir = next();
        } else if (a == "--quiet") {
            quiet = true;
        } else {
            usage("unknown option");
        }
    }

    sweep::SweepEngine engine(opts);
    const sweep::SweepResult result = engine.run(grid->build());

    if (!quiet)
        result.toTable().print(std::cout);
    std::cout << grid->name << ": " << result.points.size()
              << " points in " << fixed(result.wallSeconds, 2)
              << "s on " << result.jobs << " jobs ("
              << result.traces.recordings << " recordings, "
              << result.traces.memoryHits << " memory hits, "
              << result.traces.diskLoads << " disk loads)\n";
    if (!jsonPath.empty()) {
        result.writeJson(jsonPath);
        std::cout << "wrote " << jsonPath << '\n';
    }
    return result.allOk() ? 0 : 1;
}
