/**
 * @file
 * jrs_sweep — run a named experiment grid on the sweep engine.
 *
 *   jrs_sweep <grid> [options]
 *   jrs_sweep --list
 *
 *   --jobs N           worker threads (default: hardware concurrency)
 *   --json FILE        write the SweepResult as JSON
 *   --cache-dir DIR    on-disk trace cache; a second invocation with
 *                      the same DIR replays recorded streams instead
 *                      of re-running the VM
 *   --quiet            suppress the per-point table
 *   --progress         live progress line on stderr (points done,
 *                      recordings/hits/loads from the metric registry)
 *   --metrics-json F   write a jrs-metrics-v1 registry snapshot
 *   --trace-json F     write Chrome trace-event JSON of the sweep
 *                      (worker lanes; open in Perfetto)
 *   --perf-json F      write a jrs-perf-report-v1 attribution report:
 *                      every trace group's replay is also observed by
 *                      a perf-attribution pipeline (per-method CPI
 *                      stacks, miss/mispredict profiles), without
 *                      perturbing the sweep's own metrics
 *   --sample-json F    write a jrs-sample-v1 sampled profile per trace
 *                      group (--sample-period/--sample-seed select the
 *                      sampling knobs), same no-perturbation guarantee
 *   --collector C      run every recording under collector C (nogc,
 *                      marksweep, copying); changes stream identity,
 *                      so cached GC-less recordings are not reused
 *   --heap-bytes N     heap capacity override (k/m/g suffixes OK)
 *   --gc-budget N      collect every N allocated bytes
 *   --gc-every N       collect every N allocations (stress)
 *   --shared-code-cache  translate once per compatibility key across
 *                      all sweep workers (vm/jit/shared_cache.h);
 *                      streams and metrics are bit-identical to
 *                      private translation, only host-side translate
 *                      work is saved
 *   --compare-serial   after the sweep, re-run the grid serially
 *                      (jobs=1, private translation, fresh in-memory
 *                      trace cache) and fail unless every point's
 *                      metrics match bit-for-bit
 *
 * Examples:
 *   jrs_sweep fig07 --jobs 8 --progress
 *   jrs_sweep all --cache-dir /tmp/jrs-traces --json sweep.json
 *   jrs_sweep fig04 --jobs 4 --trace-json fig04.trace.json
 *   jrs_sweep fig09 --perf-json fig09.perf.json
 *   jrs_sweep code_cache --jobs 8 --shared-code-cache --compare-serial
 */
#include <cstdlib>
#include <iostream>

#include "obs/cli.h"
#include "obs/obs.h"
#include "support/statistics.h"
#include "sweep/grids.h"
#include "sweep/cct_observer.h"
#include "sweep/perf_observer.h"
#include "sweep/sample_observer.h"

using namespace jrs;

namespace {

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg != nullptr)
        std::cerr << "error: " << msg << "\n\n";
    std::cerr << "usage: jrs_sweep <grid> [--jobs N] [--json FILE]"
                 " [--cache-dir DIR] [--quiet] [--progress]"
                 " [--compare-serial]"
              << obs::GcCli::usageText()
              << obs::CodeCacheCli::usageText()
              << obs::ObsCli::usageText()
              << "\n       jrs_sweep --list\n\ngrids:\n";
    for (const sweep::NamedGrid &g : sweep::allGrids())
        std::cerr << "  " << g.name << " — " << g.description << '\n';
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string first = argv[1];
    if (first == "--list") {
        if (argc > 2)
            usage("--list takes no further arguments");
        for (const sweep::NamedGrid &g : sweep::allGrids())
            std::cout << g.name << " — " << g.description << '\n';
        return 0;
    }
    const sweep::NamedGrid *grid = sweep::findGrid(first);
    if (grid == nullptr)
        usage("unknown grid");

    sweep::SweepOptions opts;
    std::string jsonPath;
    obs::ObsCli cli;
    obs::GcCli gcCli;
    obs::CodeCacheCli ccCli;
    bool quiet = false;
    bool progress = false;
    bool compareSerial = false;
    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage("missing value");
            return argv[++i];
        };
        if (a == "--jobs") {
            const std::string v = next();
            char *end = nullptr;
            opts.jobs = static_cast<unsigned>(
                std::strtoul(v.c_str(), &end, 10));
            if (end == v.c_str() || *end != '\0')
                usage("--jobs expects a number");
        } else if (a == "--json") {
            jsonPath = next();
        } else if (a == "--cache-dir") {
            opts.cacheDir = next();
        } else if (a == "--quiet") {
            quiet = true;
        } else if (a == "--progress") {
            progress = true;
        } else if (a == "--compare-serial") {
            compareSerial = true;
        } else if (cli.tryParse(a, next)
                   || gcCli.tryParse(a, next)
                   || ccCli.tryParse(a, next)) {
            continue;
        } else {
            usage("unknown option");
        }
    }

    cli.setup();
    if (progress)
        obs::setEnabled(true);
    obs::PerfReportSet perfReports;
    if (cli.perfRequested())
        sweep::attachPerfObserver(opts, perfReports);
    prof::CctReportSet cctReports;
    if (cli.cctRequested())
        sweep::attachCctObserver(opts, cctReports);
    prof::SampleReportSet sampleReports;
    if (cli.sampleRequested())
        sweep::attachSampleObserver(opts, cli.sampleOptions(),
                                    sampleReports);
    if (progress) {
        // The counts come straight from the registry the sweep engine
        // publishes into (the same numbers --metrics-json snapshots).
        opts.onProgress = [](const sweep::SweepProgress &p) {
            obs::MetricRegistry &reg = obs::metrics();
            std::cerr << '\r' << p.pointsDone << '/' << p.pointsTotal
                      << " points (groups " << p.groupsDone << '/'
                      << p.groupsTotal << ", "
                      << reg.counterValue("trace_cache.recordings")
                      << " rec, "
                      << reg.counterValue("trace_cache.memory_hits")
                      << " hit, "
                      << reg.counterValue("trace_cache.disk_loads")
                      << " load)" << std::flush;
            if (p.groupsDone == p.groupsTotal)
                std::cerr << '\n';
        };
    }

    if (ccCli.sharedCodeCache)
        opts.sharedCache = std::make_shared<SharedCodeCache>();

    sweep::SweepEngine engine(opts);
    std::vector<sweep::SweepPoint> points = grid->build();
    // Collector flags override every point's stream identity (grids
    // that bake their own GC configuration, like `gc`, are left alone
    // unless the user asks otherwise).
    for (sweep::SweepPoint &p : points) {
        if (gcCli.heapBytes != kDefaultHeapBytes)
            p.key.heapBytes = gcCli.heapBytes;
        if (gcCli.enabled() || gcCli.gc.budgetBytes != 0
            || gcCli.gc.everyNAllocs != 0) {
            p.key.gc = gcCli.gc;
        }
        if (ccCli.bounded())
            p.key.codeCache = ccCli.codeCache;
        if (ccCli.codeCache.strategy != AllocStrategy::kFirstFit)
            p.key.codeCache.strategy = ccCli.codeCache.strategy;
        if (ccCli.osrBackEdgeThreshold != 0)
            p.key.osrBackEdgeThreshold = ccCli.osrBackEdgeThreshold;
    }
    const sweep::SweepResult result = engine.run(points);

    if (!quiet)
        result.toTable().print(std::cout);
    std::cout << grid->name << ": " << result.points.size()
              << " points in " << fixed(result.wallSeconds, 2)
              << "s on " << result.jobs << " jobs ("
              << result.traces.recordings << " recordings, "
              << result.traces.memoryHits << " memory hits, "
              << result.traces.diskLoads << " disk loads)\n";
    if (result.sharedCacheUsed) {
        std::cout << "shared code cache: "
                  << result.shared.sharedHits << " hits, "
                  << result.shared.misses << " builds, "
                  << result.shared.contended << " contended; built "
                  << withCommas(result.shared.buildNs) << " ns, saved "
                  << withCommas(result.shared.buildNsSaved) << " ns\n";
    }

    bool comparisonOk = true;
    if (compareSerial) {
        // Reference run: one worker, private translation, fresh
        // in-memory trace cache — every stream is re-recorded from
        // scratch. Any difference from the (possibly shared-cache,
        // parallel, disk-cached) sweep above is a determinism bug.
        sweep::SweepOptions serialOpts;
        serialOpts.jobs = 1;
        sweep::SweepEngine serialEngine(serialOpts);
        const sweep::SweepResult serial = serialEngine.run(points);
        std::size_t mismatches = 0;
        for (std::size_t i = 0; i < result.points.size(); ++i) {
            const sweep::PointResult &a = result.points[i];
            const sweep::PointResult &b = serial.points[i];
            std::string why;
            if (a.ok != b.ok) {
                why = "ok flag differs";
            } else if (a.traceEvents != b.traceEvents) {
                why = "trace events differ: "
                    + std::to_string(a.traceEvents) + " vs "
                    + std::to_string(b.traceEvents);
            } else if (a.metrics.size() != b.metrics.size()) {
                why = "metric count differs";
            } else {
                for (std::size_t m = 0; m < a.metrics.size(); ++m) {
                    if (a.metrics[m].name != b.metrics[m].name
                        || a.metrics[m].value != b.metrics[m].value) {
                        why = "metric " + a.metrics[m].name
                            + " differs";
                        break;
                    }
                }
            }
            if (!why.empty()) {
                ++mismatches;
                if (mismatches <= 10)
                    std::cerr << "MISMATCH " << a.label << ": " << why
                              << '\n';
            }
        }
        comparisonOk = mismatches == 0;
        std::cout << "compare-serial: "
                  << (comparisonOk
                          ? "all " + std::to_string(
                                result.points.size())
                              + " points bit-identical"
                          : std::to_string(mismatches)
                              + " points MISMATCHED")
                  << '\n';
    }
    if (!jsonPath.empty()) {
        result.writeJson(jsonPath);
        std::cout << "wrote " << jsonPath << '\n';
    }
    cli.finish(std::cout);
    cli.writePerf(perfReports, std::cout);
    cli.writeCct(cctReports, std::cout);
    cli.writeSample(sampleReports, std::cout);
    return result.allOk() && comparisonOk ? 0 : 1;
}
