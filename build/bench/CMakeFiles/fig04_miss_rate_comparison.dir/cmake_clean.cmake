file(REMOVE_RECURSE
  "CMakeFiles/fig04_miss_rate_comparison.dir/fig04_miss_rate_comparison.cpp.o"
  "CMakeFiles/fig04_miss_rate_comparison.dir/fig04_miss_rate_comparison.cpp.o.d"
  "fig04_miss_rate_comparison"
  "fig04_miss_rate_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_miss_rate_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
