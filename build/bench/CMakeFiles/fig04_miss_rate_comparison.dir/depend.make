# Empty dependencies file for fig04_miss_rate_comparison.
# This may be replaced when dependencies are built.
