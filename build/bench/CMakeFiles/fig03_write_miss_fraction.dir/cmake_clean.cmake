file(REMOVE_RECURSE
  "CMakeFiles/fig03_write_miss_fraction.dir/fig03_write_miss_fraction.cpp.o"
  "CMakeFiles/fig03_write_miss_fraction.dir/fig03_write_miss_fraction.cpp.o.d"
  "fig03_write_miss_fraction"
  "fig03_write_miss_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_write_miss_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
