# Empty dependencies file for fig03_write_miss_fraction.
# This may be replaced when dependencies are built.
