file(REMOVE_RECURSE
  "CMakeFiles/fig10_issue_width.dir/fig10_issue_width.cpp.o"
  "CMakeFiles/fig10_issue_width.dir/fig10_issue_width.cpp.o.d"
  "fig10_issue_width"
  "fig10_issue_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_issue_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
