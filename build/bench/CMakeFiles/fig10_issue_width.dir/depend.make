# Empty dependencies file for fig10_issue_width.
# This may be replaced when dependencies are built.
