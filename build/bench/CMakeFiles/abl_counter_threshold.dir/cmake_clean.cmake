file(REMOVE_RECURSE
  "CMakeFiles/abl_counter_threshold.dir/abl_counter_threshold.cpp.o"
  "CMakeFiles/abl_counter_threshold.dir/abl_counter_threshold.cpp.o.d"
  "abl_counter_threshold"
  "abl_counter_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_counter_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
