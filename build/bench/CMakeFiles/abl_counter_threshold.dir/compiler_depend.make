# Empty compiler generated dependencies file for abl_counter_threshold.
# This may be replaced when dependencies are built.
