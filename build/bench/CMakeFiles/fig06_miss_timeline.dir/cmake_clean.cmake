file(REMOVE_RECURSE
  "CMakeFiles/fig06_miss_timeline.dir/fig06_miss_timeline.cpp.o"
  "CMakeFiles/fig06_miss_timeline.dir/fig06_miss_timeline.cpp.o.d"
  "fig06_miss_timeline"
  "fig06_miss_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_miss_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
