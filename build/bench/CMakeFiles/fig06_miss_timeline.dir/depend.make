# Empty dependencies file for fig06_miss_timeline.
# This may be replaced when dependencies are built.
