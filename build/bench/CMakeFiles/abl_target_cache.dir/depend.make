# Empty dependencies file for abl_target_cache.
# This may be replaced when dependencies are built.
