file(REMOVE_RECURSE
  "CMakeFiles/abl_target_cache.dir/abl_target_cache.cpp.o"
  "CMakeFiles/abl_target_cache.dir/abl_target_cache.cpp.o.d"
  "abl_target_cache"
  "abl_target_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_target_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
