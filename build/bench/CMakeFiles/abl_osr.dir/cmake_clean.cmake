file(REMOVE_RECURSE
  "CMakeFiles/abl_osr.dir/abl_osr.cpp.o"
  "CMakeFiles/abl_osr.dir/abl_osr.cpp.o.d"
  "abl_osr"
  "abl_osr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_osr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
