# Empty dependencies file for abl_osr.
# This may be replaced when dependencies are built.
