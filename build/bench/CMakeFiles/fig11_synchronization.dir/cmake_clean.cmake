file(REMOVE_RECURSE
  "CMakeFiles/fig11_synchronization.dir/fig11_synchronization.cpp.o"
  "CMakeFiles/fig11_synchronization.dir/fig11_synchronization.cpp.o.d"
  "fig11_synchronization"
  "fig11_synchronization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_synchronization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
