# Empty compiler generated dependencies file for fig11_synchronization.
# This may be replaced when dependencies are built.
