# Empty dependencies file for fig08_line_size.
# This may be replaced when dependencies are built.
