file(REMOVE_RECURSE
  "CMakeFiles/fig08_line_size.dir/fig08_line_size.cpp.o"
  "CMakeFiles/fig08_line_size.dir/fig08_line_size.cpp.o.d"
  "fig08_line_size"
  "fig08_line_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_line_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
