# Empty dependencies file for abl_bytecode_locality.
# This may be replaced when dependencies are built.
