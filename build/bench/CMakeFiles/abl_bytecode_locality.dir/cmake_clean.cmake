file(REMOVE_RECURSE
  "CMakeFiles/abl_bytecode_locality.dir/abl_bytecode_locality.cpp.o"
  "CMakeFiles/abl_bytecode_locality.dir/abl_bytecode_locality.cpp.o.d"
  "abl_bytecode_locality"
  "abl_bytecode_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_bytecode_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
