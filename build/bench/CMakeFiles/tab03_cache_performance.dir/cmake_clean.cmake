file(REMOVE_RECURSE
  "CMakeFiles/tab03_cache_performance.dir/tab03_cache_performance.cpp.o"
  "CMakeFiles/tab03_cache_performance.dir/tab03_cache_performance.cpp.o.d"
  "tab03_cache_performance"
  "tab03_cache_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_cache_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
