# Empty dependencies file for tab03_cache_performance.
# This may be replaced when dependencies are built.
