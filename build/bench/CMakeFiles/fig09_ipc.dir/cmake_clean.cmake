file(REMOVE_RECURSE
  "CMakeFiles/fig09_ipc.dir/fig09_ipc.cpp.o"
  "CMakeFiles/fig09_ipc.dir/fig09_ipc.cpp.o.d"
  "fig09_ipc"
  "fig09_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
