# Empty dependencies file for fig09_ipc.
# This may be replaced when dependencies are built.
