file(REMOVE_RECURSE
  "CMakeFiles/abl_inlining.dir/abl_inlining.cpp.o"
  "CMakeFiles/abl_inlining.dir/abl_inlining.cpp.o.d"
  "abl_inlining"
  "abl_inlining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_inlining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
