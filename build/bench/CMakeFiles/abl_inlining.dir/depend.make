# Empty dependencies file for abl_inlining.
# This may be replaced when dependencies are built.
