# Empty compiler generated dependencies file for abl_btb_size.
# This may be replaced when dependencies are built.
