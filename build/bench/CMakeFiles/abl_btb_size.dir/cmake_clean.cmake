file(REMOVE_RECURSE
  "CMakeFiles/abl_btb_size.dir/abl_btb_size.cpp.o"
  "CMakeFiles/abl_btb_size.dir/abl_btb_size.cpp.o.d"
  "abl_btb_size"
  "abl_btb_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_btb_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
