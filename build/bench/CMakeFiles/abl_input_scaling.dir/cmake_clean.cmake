file(REMOVE_RECURSE
  "CMakeFiles/abl_input_scaling.dir/abl_input_scaling.cpp.o"
  "CMakeFiles/abl_input_scaling.dir/abl_input_scaling.cpp.o.d"
  "abl_input_scaling"
  "abl_input_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_input_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
