# Empty dependencies file for abl_input_scaling.
# This may be replaced when dependencies are built.
