file(REMOVE_RECURSE
  "CMakeFiles/fig01_translate_vs_execute.dir/fig01_translate_vs_execute.cpp.o"
  "CMakeFiles/fig01_translate_vs_execute.dir/fig01_translate_vs_execute.cpp.o.d"
  "fig01_translate_vs_execute"
  "fig01_translate_vs_execute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_translate_vs_execute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
