# Empty compiler generated dependencies file for fig01_translate_vs_execute.
# This may be replaced when dependencies are built.
