# Empty compiler generated dependencies file for abl_install_policy.
# This may be replaced when dependencies are built.
