file(REMOVE_RECURSE
  "CMakeFiles/abl_install_policy.dir/abl_install_policy.cpp.o"
  "CMakeFiles/abl_install_policy.dir/abl_install_policy.cpp.o.d"
  "abl_install_policy"
  "abl_install_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_install_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
