# Empty compiler generated dependencies file for tab02_branch_prediction.
# This may be replaced when dependencies are built.
