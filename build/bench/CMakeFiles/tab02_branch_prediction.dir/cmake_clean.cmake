file(REMOVE_RECURSE
  "CMakeFiles/tab02_branch_prediction.dir/tab02_branch_prediction.cpp.o"
  "CMakeFiles/tab02_branch_prediction.dir/tab02_branch_prediction.cpp.o.d"
  "tab02_branch_prediction"
  "tab02_branch_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_branch_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
