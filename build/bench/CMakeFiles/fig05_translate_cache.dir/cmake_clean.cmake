file(REMOVE_RECURSE
  "CMakeFiles/fig05_translate_cache.dir/fig05_translate_cache.cpp.o"
  "CMakeFiles/fig05_translate_cache.dir/fig05_translate_cache.cpp.o.d"
  "fig05_translate_cache"
  "fig05_translate_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_translate_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
