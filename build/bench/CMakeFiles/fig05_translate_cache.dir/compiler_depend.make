# Empty compiler generated dependencies file for fig05_translate_cache.
# This may be replaced when dependencies are built.
