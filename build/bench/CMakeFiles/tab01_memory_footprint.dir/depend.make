# Empty dependencies file for tab01_memory_footprint.
# This may be replaced when dependencies are built.
