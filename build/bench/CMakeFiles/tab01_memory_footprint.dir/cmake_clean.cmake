file(REMOVE_RECURSE
  "CMakeFiles/tab01_memory_footprint.dir/tab01_memory_footprint.cpp.o"
  "CMakeFiles/tab01_memory_footprint.dir/tab01_memory_footprint.cpp.o.d"
  "tab01_memory_footprint"
  "tab01_memory_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_memory_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
