file(REMOVE_RECURSE
  "CMakeFiles/fig07_associativity.dir/fig07_associativity.cpp.o"
  "CMakeFiles/fig07_associativity.dir/fig07_associativity.cpp.o.d"
  "fig07_associativity"
  "fig07_associativity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_associativity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
