# Empty compiler generated dependencies file for fig07_associativity.
# This may be replaced when dependencies are built.
