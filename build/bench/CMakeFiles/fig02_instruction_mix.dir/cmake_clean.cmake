file(REMOVE_RECURSE
  "CMakeFiles/fig02_instruction_mix.dir/fig02_instruction_mix.cpp.o"
  "CMakeFiles/fig02_instruction_mix.dir/fig02_instruction_mix.cpp.o.d"
  "fig02_instruction_mix"
  "fig02_instruction_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_instruction_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
