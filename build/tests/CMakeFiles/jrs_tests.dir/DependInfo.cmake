
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bpred.cpp" "tests/CMakeFiles/jrs_tests.dir/test_bpred.cpp.o" "gcc" "tests/CMakeFiles/jrs_tests.dir/test_bpred.cpp.o.d"
  "/root/repo/tests/test_bytecode.cpp" "tests/CMakeFiles/jrs_tests.dir/test_bytecode.cpp.o" "gcc" "tests/CMakeFiles/jrs_tests.dir/test_bytecode.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/jrs_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/jrs_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/jrs_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/jrs_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_executor.cpp" "tests/CMakeFiles/jrs_tests.dir/test_executor.cpp.o" "gcc" "tests/CMakeFiles/jrs_tests.dir/test_executor.cpp.o.d"
  "/root/repo/tests/test_inlining.cpp" "tests/CMakeFiles/jrs_tests.dir/test_inlining.cpp.o" "gcc" "tests/CMakeFiles/jrs_tests.dir/test_inlining.cpp.o.d"
  "/root/repo/tests/test_jit.cpp" "tests/CMakeFiles/jrs_tests.dir/test_jit.cpp.o" "gcc" "tests/CMakeFiles/jrs_tests.dir/test_jit.cpp.o.d"
  "/root/repo/tests/test_objects.cpp" "tests/CMakeFiles/jrs_tests.dir/test_objects.cpp.o" "gcc" "tests/CMakeFiles/jrs_tests.dir/test_objects.cpp.o.d"
  "/root/repo/tests/test_osr.cpp" "tests/CMakeFiles/jrs_tests.dir/test_osr.cpp.o" "gcc" "tests/CMakeFiles/jrs_tests.dir/test_osr.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/jrs_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/jrs_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/jrs_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/jrs_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "tests/CMakeFiles/jrs_tests.dir/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/jrs_tests.dir/test_runtime.cpp.o.d"
  "/root/repo/tests/test_semantics.cpp" "tests/CMakeFiles/jrs_tests.dir/test_semantics.cpp.o" "gcc" "tests/CMakeFiles/jrs_tests.dir/test_semantics.cpp.o.d"
  "/root/repo/tests/test_startup_lib.cpp" "tests/CMakeFiles/jrs_tests.dir/test_startup_lib.cpp.o" "gcc" "tests/CMakeFiles/jrs_tests.dir/test_startup_lib.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/jrs_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/jrs_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_sync.cpp" "tests/CMakeFiles/jrs_tests.dir/test_sync.cpp.o" "gcc" "tests/CMakeFiles/jrs_tests.dir/test_sync.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/jrs_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/jrs_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_trace_invariants.cpp" "tests/CMakeFiles/jrs_tests.dir/test_trace_invariants.cpp.o" "gcc" "tests/CMakeFiles/jrs_tests.dir/test_trace_invariants.cpp.o.d"
  "/root/repo/tests/test_trace_io.cpp" "tests/CMakeFiles/jrs_tests.dir/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/jrs_tests.dir/test_trace_io.cpp.o.d"
  "/root/repo/tests/test_verifier.cpp" "tests/CMakeFiles/jrs_tests.dir/test_verifier.cpp.o" "gcc" "tests/CMakeFiles/jrs_tests.dir/test_verifier.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/jrs_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/jrs_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jrs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
