# Empty compiler generated dependencies file for jrs_tests.
# This may be replaced when dependencies are built.
