
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/bpred/btb.cpp" "src/CMakeFiles/jrs.dir/arch/bpred/btb.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/arch/bpred/btb.cpp.o.d"
  "/root/repo/src/arch/bpred/predictors.cpp" "src/CMakeFiles/jrs.dir/arch/bpred/predictors.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/arch/bpred/predictors.cpp.o.d"
  "/root/repo/src/arch/cache/cache.cpp" "src/CMakeFiles/jrs.dir/arch/cache/cache.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/arch/cache/cache.cpp.o.d"
  "/root/repo/src/arch/cache/time_series.cpp" "src/CMakeFiles/jrs.dir/arch/cache/time_series.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/arch/cache/time_series.cpp.o.d"
  "/root/repo/src/arch/mix/instruction_mix.cpp" "src/CMakeFiles/jrs.dir/arch/mix/instruction_mix.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/arch/mix/instruction_mix.cpp.o.d"
  "/root/repo/src/arch/pipeline/pipeline.cpp" "src/CMakeFiles/jrs.dir/arch/pipeline/pipeline.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/arch/pipeline/pipeline.cpp.o.d"
  "/root/repo/src/harness/experiment.cpp" "src/CMakeFiles/jrs.dir/harness/experiment.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/harness/experiment.cpp.o.d"
  "/root/repo/src/harness/paper_data.cpp" "src/CMakeFiles/jrs.dir/harness/paper_data.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/harness/paper_data.cpp.o.d"
  "/root/repo/src/isa/address_map.cpp" "src/CMakeFiles/jrs.dir/isa/address_map.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/isa/address_map.cpp.o.d"
  "/root/repo/src/isa/trace.cpp" "src/CMakeFiles/jrs.dir/isa/trace.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/isa/trace.cpp.o.d"
  "/root/repo/src/isa/trace_io.cpp" "src/CMakeFiles/jrs.dir/isa/trace_io.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/isa/trace_io.cpp.o.d"
  "/root/repo/src/support/random.cpp" "src/CMakeFiles/jrs.dir/support/random.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/support/random.cpp.o.d"
  "/root/repo/src/support/statistics.cpp" "src/CMakeFiles/jrs.dir/support/statistics.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/support/statistics.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/jrs.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/support/table.cpp.o.d"
  "/root/repo/src/vm/bytecode/assembler.cpp" "src/CMakeFiles/jrs.dir/vm/bytecode/assembler.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/vm/bytecode/assembler.cpp.o.d"
  "/root/repo/src/vm/bytecode/class_def.cpp" "src/CMakeFiles/jrs.dir/vm/bytecode/class_def.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/vm/bytecode/class_def.cpp.o.d"
  "/root/repo/src/vm/bytecode/disassembler.cpp" "src/CMakeFiles/jrs.dir/vm/bytecode/disassembler.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/vm/bytecode/disassembler.cpp.o.d"
  "/root/repo/src/vm/bytecode/opcode.cpp" "src/CMakeFiles/jrs.dir/vm/bytecode/opcode.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/vm/bytecode/opcode.cpp.o.d"
  "/root/repo/src/vm/bytecode/verifier.cpp" "src/CMakeFiles/jrs.dir/vm/bytecode/verifier.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/vm/bytecode/verifier.cpp.o.d"
  "/root/repo/src/vm/engine/engine.cpp" "src/CMakeFiles/jrs.dir/vm/engine/engine.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/vm/engine/engine.cpp.o.d"
  "/root/repo/src/vm/engine/policy.cpp" "src/CMakeFiles/jrs.dir/vm/engine/policy.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/vm/engine/policy.cpp.o.d"
  "/root/repo/src/vm/engine/profile.cpp" "src/CMakeFiles/jrs.dir/vm/engine/profile.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/vm/engine/profile.cpp.o.d"
  "/root/repo/src/vm/interp/handler_model.cpp" "src/CMakeFiles/jrs.dir/vm/interp/handler_model.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/vm/interp/handler_model.cpp.o.d"
  "/root/repo/src/vm/interp/interpreter.cpp" "src/CMakeFiles/jrs.dir/vm/interp/interpreter.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/vm/interp/interpreter.cpp.o.d"
  "/root/repo/src/vm/jit/code_cache.cpp" "src/CMakeFiles/jrs.dir/vm/jit/code_cache.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/vm/jit/code_cache.cpp.o.d"
  "/root/repo/src/vm/jit/native_inst.cpp" "src/CMakeFiles/jrs.dir/vm/jit/native_inst.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/vm/jit/native_inst.cpp.o.d"
  "/root/repo/src/vm/jit/translator.cpp" "src/CMakeFiles/jrs.dir/vm/jit/translator.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/vm/jit/translator.cpp.o.d"
  "/root/repo/src/vm/native/executor.cpp" "src/CMakeFiles/jrs.dir/vm/native/executor.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/vm/native/executor.cpp.o.d"
  "/root/repo/src/vm/runtime/class_registry.cpp" "src/CMakeFiles/jrs.dir/vm/runtime/class_registry.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/vm/runtime/class_registry.cpp.o.d"
  "/root/repo/src/vm/runtime/heap.cpp" "src/CMakeFiles/jrs.dir/vm/runtime/heap.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/vm/runtime/heap.cpp.o.d"
  "/root/repo/src/vm/runtime/runtime_support.cpp" "src/CMakeFiles/jrs.dir/vm/runtime/runtime_support.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/vm/runtime/runtime_support.cpp.o.d"
  "/root/repo/src/vm/runtime/thread.cpp" "src/CMakeFiles/jrs.dir/vm/runtime/thread.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/vm/runtime/thread.cpp.o.d"
  "/root/repo/src/vm/runtime/value.cpp" "src/CMakeFiles/jrs.dir/vm/runtime/value.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/vm/runtime/value.cpp.o.d"
  "/root/repo/src/vm/sync/lock_stats.cpp" "src/CMakeFiles/jrs.dir/vm/sync/lock_stats.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/vm/sync/lock_stats.cpp.o.d"
  "/root/repo/src/vm/sync/monitor_cache.cpp" "src/CMakeFiles/jrs.dir/vm/sync/monitor_cache.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/vm/sync/monitor_cache.cpp.o.d"
  "/root/repo/src/vm/sync/sync_system.cpp" "src/CMakeFiles/jrs.dir/vm/sync/sync_system.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/vm/sync/sync_system.cpp.o.d"
  "/root/repo/src/vm/sync/thin_lock.cpp" "src/CMakeFiles/jrs.dir/vm/sync/thin_lock.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/vm/sync/thin_lock.cpp.o.d"
  "/root/repo/src/workloads/compress.cpp" "src/CMakeFiles/jrs.dir/workloads/compress.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/workloads/compress.cpp.o.d"
  "/root/repo/src/workloads/db.cpp" "src/CMakeFiles/jrs.dir/workloads/db.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/workloads/db.cpp.o.d"
  "/root/repo/src/workloads/hello.cpp" "src/CMakeFiles/jrs.dir/workloads/hello.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/workloads/hello.cpp.o.d"
  "/root/repo/src/workloads/jack.cpp" "src/CMakeFiles/jrs.dir/workloads/jack.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/workloads/jack.cpp.o.d"
  "/root/repo/src/workloads/javac.cpp" "src/CMakeFiles/jrs.dir/workloads/javac.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/workloads/javac.cpp.o.d"
  "/root/repo/src/workloads/jess.cpp" "src/CMakeFiles/jrs.dir/workloads/jess.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/workloads/jess.cpp.o.d"
  "/root/repo/src/workloads/mpeg.cpp" "src/CMakeFiles/jrs.dir/workloads/mpeg.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/workloads/mpeg.cpp.o.d"
  "/root/repo/src/workloads/mtrt.cpp" "src/CMakeFiles/jrs.dir/workloads/mtrt.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/workloads/mtrt.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/CMakeFiles/jrs.dir/workloads/registry.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/workloads/registry.cpp.o.d"
  "/root/repo/src/workloads/startup_lib.cpp" "src/CMakeFiles/jrs.dir/workloads/startup_lib.cpp.o" "gcc" "src/CMakeFiles/jrs.dir/workloads/startup_lib.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
