file(REMOVE_RECURSE
  "libjrs.a"
)
