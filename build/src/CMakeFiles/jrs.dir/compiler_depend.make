# Empty compiler generated dependencies file for jrs.
# This may be replaced when dependencies are built.
