src/CMakeFiles/jrs.dir/harness/paper_data.cpp.o: \
 /root/repo/src/harness/paper_data.cpp /usr/include/stdc-predef.h \
 /root/repo/src/harness/paper_data.h
