# Empty dependencies file for adaptive_jit.
# This may be replaced when dependencies are built.
