file(REMOVE_RECURSE
  "CMakeFiles/jrs_run.dir/jrs_run.cpp.o"
  "CMakeFiles/jrs_run.dir/jrs_run.cpp.o.d"
  "jrs_run"
  "jrs_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jrs_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
