# Empty compiler generated dependencies file for jrs_run.
# This may be replaced when dependencies are built.
