#include <gtest/gtest.h>

#include "vm/bytecode/verifier.h"
#include "vm_test_util.h"
#include "workloads/workload.h"

namespace jrs {
namespace {

TEST(VerifyLattice, JoinRules)
{
    EXPECT_EQ(joinVTy(VTy::Int, VTy::Int), VTy::Int);
    EXPECT_EQ(joinVTy(VTy::Ref, VTy::Null), VTy::Ref);
    EXPECT_EQ(joinVTy(VTy::Null, VTy::Ref), VTy::Ref);
    EXPECT_EQ(joinVTy(VTy::Null, VTy::Null), VTy::Null);
    EXPECT_EQ(joinVTy(VTy::Int, VTy::Float), VTy::Top);
    EXPECT_EQ(joinVTy(VTy::Int, VTy::Ref), VTy::Top);
    EXPECT_EQ(joinVTy(VTy::Top, VTy::Int), VTy::Top);
    EXPECT_STREQ(vtyName(VTy::Null), "null");
}

TEST(Verify, RejectsIaddOnFloats)
{
    EXPECT_THROW(test::makeProgram([](MethodBuilder &m) {
                     m.fconst(1.0f).fconst(2.0f).iadd().ireturn();
                 }),
                 VerifyError);
}

TEST(Verify, RejectsArithmeticOnRefs)
{
    EXPECT_THROW(test::makeProgram([](MethodBuilder &m) {
                     m.iconst(4).newArray(ArrayKind::Int);
                     m.iconst(4).newArray(ArrayKind::Int);
                     m.iadd().ireturn();
                 }),
                 VerifyError);
}

TEST(Verify, RejectsFloatLoadOfIntLocal)
{
    EXPECT_THROW(test::makeProgram([](MethodBuilder &m) {
                     m.locals(2);
                     m.iconst(1).istore(1);
                     m.fload(1).f2i().ireturn();
                 }),
                 VerifyError);
}

TEST(Verify, RejectsRefLoadOfFreshLocal)
{
    // Non-argument locals are zero-initialized ints: reading one as a
    // reference would diverge between the engines.
    EXPECT_THROW(test::makeProgram([](MethodBuilder &m) {
                     m.locals(2);
                     m.aload(1).arrayLength().ireturn();
                 }),
                 VerifyError);
}

TEST(Verify, RejectsWrongReturnKind)
{
    EXPECT_THROW(test::makeProgram([](MethodBuilder &m) {
                     m.fconst(1.0f).freturn();  // method returns int
                 }),
                 VerifyError);
    EXPECT_THROW(test::makeProgram([](MethodBuilder &m) {
                     m.returnVoid();  // method returns int
                 }),
                 VerifyError);
    EXPECT_THROW(test::makeProgram([](MethodBuilder &m) {
                     m.iconst(4).newArray(ArrayKind::Int).areturn();
                 }),
                 VerifyError);
}

TEST(Verify, RejectsStaticTypeMismatch)
{
    EXPECT_THROW(
        test::makeProgramFull([](ProgramBuilder &pb) {
            pb.staticSlot("f", VType::Float);
            ClassBuilder &t = pb.cls("T");
            MethodBuilder &m =
                t.staticMethod("main", {VType::Int}, VType::Int);
            m.getStaticI("f").ireturn();  // int access of float slot
        }),
        VerifyError);
}

TEST(Verify, RejectsIntStoreIntoRefArray)
{
    EXPECT_THROW(test::makeProgram([](MethodBuilder &m) {
                     m.locals(2);
                     m.iconst(4).newArray(ArrayKind::Ref).astore(1);
                     m.aload(1).iconst(0).iconst(7).aastore();
                     m.iconst(0).ireturn();
                 }),
                 VerifyError);
}

TEST(Verify, RejectsCallWithWrongArgType)
{
    EXPECT_THROW(
        test::makeProgramFull([](ProgramBuilder &pb) {
            ClassBuilder &t = pb.cls("T");
            {
                MethodBuilder &m =
                    t.staticMethod("f", {VType::Float}, VType::Int);
                m.fload(0).f2i().ireturn();
            }
            MethodBuilder &m =
                t.staticMethod("main", {VType::Int}, VType::Int);
            m.iload(0).invokeStatic("T.f").ireturn();  // int arg
        }),
        VerifyError);
}

TEST(Verify, RejectsMonitorOnInt)
{
    EXPECT_THROW(test::makeProgram([](MethodBuilder &m) {
                     m.iconst(1).monitorEnter();
                     m.iconst(0).ireturn();
                 }),
                 VerifyError);
}

TEST(Verify, RejectsAthrowOfInt)
{
    EXPECT_THROW(test::makeProgram([](MethodBuilder &m) {
                     m.iconst(1).athrow();
                 }),
                 VerifyError);
}

TEST(Verify, RejectsUseOfMergeConflict)
{
    // One path leaves an int in local 1, the other a float; the merged
    // slot is unusable by either typed load.
    EXPECT_THROW(test::makeProgram([](MethodBuilder &m) {
                     m.locals(2);
                     Label other = m.newLabel(), join = m.newLabel();
                     m.iload(0).ifeq(other);
                     m.fconst(1.0f).fstore(1);
                     m.gotoL(join);
                     m.bind(other);
                     m.iconst(2).istore(1);
                     m.bind(join);
                     m.fload(1).f2i().ireturn();
                 }),
                 VerifyError);
}

TEST(Verify, MergeConflictIsFineIfOverwritten)
{
    // The same merge is legal when the slot is re-stored before use.
    EXPECT_EQ(test::bothModes(
                  [](MethodBuilder &m) {
                      m.locals(2);
                      Label other = m.newLabel(), join = m.newLabel();
                      m.iload(0).ifeq(other);
                      m.fconst(1.0f).fstore(1);
                      m.gotoL(join);
                      m.bind(other);
                      m.iconst(2).istore(1);
                      m.bind(join);
                      m.iconst(9).istore(1);
                      m.iload(1).ireturn();
                  },
                  1),
              9);
}

TEST(Verify, NullMergesIntoRef)
{
    EXPECT_EQ(test::bothModes(
                  [](MethodBuilder &m) {
                      m.locals(2);
                      Label real = m.newLabel(), join = m.newLabel();
                      m.iload(0).ifne(real);
                      m.aconstNull().astore(1);
                      m.gotoL(join);
                      m.bind(real);
                      m.iconst(3).newArray(ArrayKind::Int).astore(1);
                      m.bind(join);
                      Label is_null = m.newLabel();
                      m.aload(1).ifnull(is_null);
                      m.aload(1).arrayLength().ireturn();
                      m.bind(is_null);
                      m.iconst(-1).ireturn();
                  },
                  1),
              3);
}

TEST(Verify, HandlerEntryIsRefTyped)
{
    // The handler may treat the incoming value as a reference.
    EXPECT_EQ(test::interpret([](MethodBuilder &m) {
        m.locals(2);
        Label ts = m.newLabel(), te = m.newLabel(), h = m.newLabel();
        m.bind(ts);
        m.iconst(1).iload(0).idiv().pop();
        m.bind(te);
        m.iconst(1).ireturn();
        m.bind(h);
        m.astore(1);  // exception ref
        m.iconst(2).ireturn();
        m.addHandler(ts, te, h);
    }, 0), 2);
}

TEST(Verify, RejectsHandlerTreatingExceptionAsInt)
{
    EXPECT_THROW(test::makeProgram([](MethodBuilder &m) {
                     Label ts = m.newLabel(), te = m.newLabel();
                     Label h = m.newLabel();
                     m.bind(ts);
                     m.iconst(1).iload(0).idiv().pop();
                     m.bind(te);
                     m.iconst(1).ireturn();
                     m.bind(h);
                     m.ireturn();  // exception ref returned as int
                     m.addHandler(ts, te, h);
                 }),
                 VerifyError);
}

TEST(Verify, RejectsBadSpawnTarget)
{
    EXPECT_THROW(
        test::makeProgramFull([](ProgramBuilder &pb) {
            ClassBuilder &t = pb.cls("T");
            {
                MethodBuilder &m = t.staticMethod(
                    "w2", {VType::Int, VType::Int}, VType::Void);
                m.returnVoid();
            }
            MethodBuilder &m =
                t.staticMethod("main", {VType::Int}, VType::Int);
            m.iconst(0).spawnThread("T.w2").ireturn();
        }),
        VerifyError);
}

TEST(Verify, AllWorkloadsAreTypeClean)
{
    // Building a workload runs the verifier; none may throw.
    for (const WorkloadInfo &w : allWorkloads())
        EXPECT_NO_THROW((void)w.build()) << w.name;
}

TEST(Verify, FcmplRequiresFloats)
{
    EXPECT_THROW(test::makeProgram([](MethodBuilder &m) {
                     m.iconst(1).iconst(2).fcmpl().ireturn();
                 }),
                 VerifyError);
}

TEST(Verify, ConversionsAreDirectional)
{
    EXPECT_THROW(test::makeProgram([](MethodBuilder &m) {
                     m.fconst(1.0f).i2f().f2i().ireturn();
                 }),
                 VerifyError);
    EXPECT_THROW(test::makeProgram([](MethodBuilder &m) {
                     m.iconst(1).f2i().ireturn();
                 }),
                 VerifyError);
}

} // namespace
} // namespace jrs
