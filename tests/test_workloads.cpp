#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "vm_test_util.h"
#include "workloads/workload.h"

namespace jrs {
namespace {

RunResult
runMode(const WorkloadInfo &w, std::shared_ptr<CompilationPolicy> p,
        SyncKind sync = SyncKind::ThinLock)
{
    RunSpec s;
    s.workload = &w;
    s.arg = w.tinyArg;
    s.policy = std::move(p);
    s.syncKind = sync;
    return runWorkload(s);
}

/** Every workload, four policies, identical checksums. */
class WorkloadModes : public ::testing::TestWithParam<const char *> {};

TEST_P(WorkloadModes, AllPoliciesAgree)
{
    const WorkloadInfo *w = findWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    const RunResult interp =
        runMode(*w, std::make_shared<NeverCompilePolicy>());
    const RunResult jit =
        runMode(*w, std::make_shared<AlwaysCompilePolicy>());
    const RunResult counter =
        runMode(*w, std::make_shared<CounterPolicy>(3));
    EXPECT_EQ(interp.exitValue, jit.exitValue);
    EXPECT_EQ(interp.exitValue, counter.exitValue);
    EXPECT_EQ(interp.output, jit.output);
    EXPECT_GT(interp.totalEvents, 0u);
    EXPECT_EQ(jit.bytecodesInterpreted, 0u);
    EXPECT_GT(jit.methodsCompiled, 0u);
}

TEST_P(WorkloadModes, OracleMatchesAndIsNoWorse)
{
    const WorkloadInfo *w = findWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    const OracleOutcome o = runOracleExperiment(*w, w->tinyArg);
    EXPECT_EQ(o.interpRun.exitValue, o.oracleRun.exitValue);
    // The oracle may not beat both pure modes on tiny inputs, but it
    // must never be grossly worse than the better of the two.
    const std::uint64_t best =
        std::min(o.interpRun.totalEvents, o.jitRun.totalEvents);
    EXPECT_LE(o.oracleRun.totalEvents, best + best / 4);
}

TEST_P(WorkloadModes, SyncImplementationsAgreeOnResult)
{
    const WorkloadInfo *w = findWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    const RunResult thin = runMode(
        *w, std::make_shared<AlwaysCompilePolicy>(), SyncKind::ThinLock);
    const RunResult fat = runMode(
        *w, std::make_shared<AlwaysCompilePolicy>(),
        SyncKind::MonitorCache);
    const RunResult onebit = runMode(
        *w, std::make_shared<AlwaysCompilePolicy>(),
        SyncKind::OneBitLock);
    EXPECT_EQ(thin.exitValue, fat.exitValue);
    EXPECT_EQ(thin.exitValue, onebit.exitValue);
    // Case classification is workload-determined.
    for (std::size_t c = 0; c < kNumLockCases; ++c) {
        EXPECT_EQ(thin.lockStats.caseCount[c],
                  fat.lockStats.caseCount[c]);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, WorkloadModes,
    ::testing::Values("compress", "jess", "db", "javac", "mpeg",
                      "mtrt", "jack", "hello"),
    [](const auto &info) { return std::string(info.param); });

TEST(Workloads, RegistryIsComplete)
{
    EXPECT_EQ(allWorkloads().size(), 8u);
    EXPECT_NE(findWorkload("compress"), nullptr);
    EXPECT_EQ(findWorkload("nope"), nullptr);
    for (const WorkloadInfo &w : allWorkloads()) {
        EXPECT_GT(w.tinyArg, 0);
        EXPECT_GE(w.smallArg, w.tinyArg);
        EXPECT_NE(w.description, nullptr);
    }
}

TEST(Workloads, DeterministicAcrossRepeatedRuns)
{
    const WorkloadInfo *w = findWorkload("db");
    const RunResult a =
        runMode(*w, std::make_shared<AlwaysCompilePolicy>());
    const RunResult b =
        runMode(*w, std::make_shared<AlwaysCompilePolicy>());
    EXPECT_EQ(a.exitValue, b.exitValue);
    EXPECT_EQ(a.totalEvents, b.totalEvents);
    EXPECT_EQ(a.lockStats.totalAccesses(),
              b.lockStats.totalAccesses());
}

TEST(Workloads, DbIsSynchronizationHeavy)
{
    const WorkloadInfo *w = findWorkload("db");
    const RunResult r =
        runMode(*w, std::make_shared<AlwaysCompilePolicy>());
    EXPECT_GT(r.lockStats.totalAccesses(), 100u);
    // Single-threaded: everything is case (a) or (b), mostly (a).
    EXPECT_EQ(r.lockStats.caseCount[3], 0u);
    EXPECT_GT(r.lockStats.caseCount[0],
              r.lockStats.totalAccesses() / 2);
}

TEST(Workloads, MtrtRunsMultipleThreads)
{
    const WorkloadInfo *w = findWorkload("mtrt");
    const RunResult r =
        runMode(*w, std::make_shared<AlwaysCompilePolicy>());
    ASSERT_TRUE(r.completed);
    // Progress counter bumps = height rows, via synchronized methods.
    EXPECT_GT(r.lockStats.enterOps, 0u);
}

TEST(Workloads, JackExercisesExceptions)
{
    // jack's checksum folds in caught ParseError positions; a run
    // without exceptions would change the checksum. Cross-check that
    // its input really contains bad characters by scanning genInput's
    // deterministic stream through the interpreter.
    const WorkloadInfo *w = findWorkload("jack");
    const RunResult r =
        runMode(*w, std::make_shared<NeverCompilePolicy>());
    ASSERT_TRUE(r.completed);
    EXPECT_NE(r.exitValue, 0);
}

TEST(Workloads, HelloPrintsGreeting)
{
    const WorkloadInfo *w = findWorkload("hello");
    const RunResult r =
        runMode(*w, std::make_shared<NeverCompilePolicy>());
    EXPECT_EQ(r.output, "Hello, world\n");
}

TEST(Workloads, GoldenChecksumsPinned)
{
    // Pinned values guard against silent semantic drift. If a workload
    // generator deliberately changes, update these constants.
    const WorkloadInfo *hello = findWorkload("hello");
    EXPECT_EQ(runMode(*hello, std::make_shared<NeverCompilePolicy>())
                  .exitValue,
              495292);
}

TEST(Workloads, ScalesWithArgument)
{
    const WorkloadInfo *w = findWorkload("compress");
    RunSpec s1;
    s1.workload = w;
    s1.arg = 1000;
    s1.policy = std::make_shared<NeverCompilePolicy>();
    RunSpec s2 = s1;
    s2.arg = 4000;
    const RunResult a = runWorkload(s1);
    const RunResult b = runWorkload(s2);
    EXPECT_GT(b.totalEvents, 2 * a.totalEvents);
}

TEST(Harness, RunBothModesChecksDivergence)
{
    const WorkloadInfo *w = findWorkload("javac");
    const ModePair mp = runBothModes(*w, w->tinyArg, nullptr, nullptr);
    EXPECT_EQ(mp.interp.exitValue, mp.jit.exitValue);
    EXPECT_GT(mp.interp.totalEvents, mp.jit.totalEvents / 2);
}

TEST(Harness, OracleReportsDecisions)
{
    const WorkloadInfo *w = findWorkload("hello");
    const OracleOutcome o = runOracleExperiment(*w, 1);
    EXPECT_EQ(o.decisions.size(),
              o.interpRun.profiles.size());
    // hello methods are invoked a handful of times at most: the
    // oracle declines to compile the bulk of them.
    EXPECT_LE(o.methodsCompiledByOracle,
              o.jitRun.methodsCompiled / 2);
    EXPECT_LE(o.oracleRun.totalEvents, o.jitRun.totalEvents);
}

} // namespace
} // namespace jrs
