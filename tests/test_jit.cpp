#include <gtest/gtest.h>

#include "support/random.h"
#include "vm/jit/code_cache.h"
#include "vm/jit/native_inst.h"
#include "vm/jit/translator.h"
#include "vm_test_util.h"

namespace jrs {
namespace {

/** Translate one method of a program without running it. */
struct TranslationHarness {
    explicit TranslationHarness(const Program &prog)
        : heap(1 << 20), registry(prog, heap), emitter(nullptr),
          translator(registry, cache, emitter)
    {
    }

    Heap heap;
    ClassRegistry registry;
    TraceEmitter emitter;
    CodeCache cache;
    Translator translator;
};

TEST(CodeCache, AssignsDisjointAlignedAddresses)
{
    const Program prog = test::makeProgramFull([](ProgramBuilder &pb) {
        ClassBuilder &t = pb.cls("T");
        {
            MethodBuilder &m = t.staticMethod("f", {}, VType::Int);
            m.iconst(1).ireturn();
        }
        {
            MethodBuilder &m = t.staticMethod("g", {}, VType::Int);
            m.iconst(2).ireturn();
        }
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.iconst(0).ireturn();
    });
    TranslationHarness h(prog);
    const NativeMethod *f =
        h.translator.translate(prog.findMethod("T.f")->id);
    const NativeMethod *g =
        h.translator.translate(prog.findMethod("T.g")->id);
    ASSERT_NE(f, nullptr);
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(f->codeBase % 64, 0u);
    EXPECT_EQ(g->codeBase % 64, 0u);
    EXPECT_GE(g->codeBase, f->codeBase + f->codeBytes());
    EXPECT_EQ(h.cache.numMethods(), 2u);
    EXPECT_EQ(h.cache.lookup(f->id), f);
    EXPECT_EQ(h.cache.lookup(9999), nullptr);
}

TEST(CodeCache, DoubleInstallThrows)
{
    const Program prog = test::makeProgram(
        [](MethodBuilder &m) { m.iconst(0).ireturn(); });
    TranslationHarness h(prog);
    ASSERT_NE(h.translator.translate(0), nullptr);
    EXPECT_THROW(h.translator.translate(0), VmError);
}

TEST(Translator, RefusesTooManyArgs)
{
    const Program prog = test::makeProgramFull([](ProgramBuilder &pb) {
        ClassBuilder &t = pb.cls("T");
        {
            std::vector<VType> args(12, VType::Int);
            MethodBuilder &m = t.staticMethod("wide", args, VType::Int);
            m.iload(0).ireturn();
        }
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.iconst(0).ireturn();
    });
    TranslationHarness h(prog);
    EXPECT_EQ(h.translator.translate(prog.findMethod("T.wide")->id),
              nullptr);
}

TEST(Translator, EliminatesStackShuffling)
{
    // iload/istore pairs become register moves: far fewer native
    // instructions than bytecodes * interpretation cost.
    const Program prog = test::makeProgram([](MethodBuilder &m) {
        m.locals(3);
        m.iload(0).istore(1);
        m.iload(1).istore(2);
        m.iload(2).ireturn();
    });
    TranslationHarness h(prog);
    const NativeMethod *nm = h.translator.translate(prog.entry);
    ASSERT_NE(nm, nullptr);
    // prologue (1 arg move) + 3 pairs of moves + return move + ret +
    // guard: small.
    EXPECT_LE(nm->code.size(), 12u);
    for (const NativeInst &inst : nm->code) {
        EXPECT_NE(inst.op, NOp::Ld);
        EXPECT_NE(inst.op, NOp::St);
    }
}

TEST(Translator, BranchTargetsPatchedToNativeIndices)
{
    const Program prog = test::makeProgram([](MethodBuilder &m) {
        m.locals(2);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(0).ifle(done);
        m.iinc(0, -1);
        m.gotoL(loop);
        m.bind(done);
        m.iconst(0).ireturn();
    });
    TranslationHarness h(prog);
    const NativeMethod *nm = h.translator.translate(prog.entry);
    ASSERT_NE(nm, nullptr);
    for (const NativeInst &inst : nm->code) {
        if (inst.op == NOp::Br || inst.op == NOp::Jmp) {
            EXPECT_GE(inst.imm, 0);
            EXPECT_LT(static_cast<std::size_t>(inst.imm),
                      nm->code.size());
        }
    }
}

TEST(Translator, SynchronizedAndHandlersCarriedOver)
{
    const Program prog = test::makeProgramFull([](ProgramBuilder &pb) {
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        Label ts = m.newLabel(), te = m.newLabel(), h = m.newLabel();
        m.bind(ts);
        m.iconst(10).iload(0).idiv();
        m.bind(te);
        m.ireturn();
        m.bind(h);
        m.pop();
        m.iconst(-1).ireturn();
        m.addHandler(ts, te, h);
    });
    TranslationHarness h(prog);
    const NativeMethod *nm = h.translator.translate(prog.entry);
    ASSERT_NE(nm, nullptr);
    ASSERT_EQ(nm->handlers.size(), 1u);
    EXPECT_LT(nm->handlers[0].startIdx, nm->handlers[0].endIdx);
    EXPECT_LT(nm->handlers[0].handlerIdx, nm->code.size());
}

TEST(Translator, CountsWork)
{
    const Program prog = test::makeProgram([](MethodBuilder &m) {
        m.iconst(1).iconst(2).iadd().ireturn();
    });
    TranslationHarness h(prog);
    h.translator.translate(prog.entry);
    EXPECT_EQ(h.translator.methodsTranslated(), 1u);
    EXPECT_EQ(h.translator.bytecodesTranslated(), 4u);
    EXPECT_GT(h.translator.peakWorkingBytes(), 0u);
}

TEST(Translator, TableSwitchBecomesJumpTable)
{
    const Program prog = test::makeProgram([](MethodBuilder &m) {
        Label a = m.newLabel(), b = m.newLabel(), d = m.newLabel();
        m.iload(0);
        m.tableSwitch(0, {a, b}, d);
        m.bind(a);
        m.iconst(1).ireturn();
        m.bind(b);
        m.iconst(2).ireturn();
        m.bind(d);
        m.iconst(3).ireturn();
    });
    TranslationHarness h(prog);
    const NativeMethod *nm = h.translator.translate(prog.entry);
    ASSERT_NE(nm, nullptr);
    ASSERT_EQ(nm->jumpTables.size(), 1u);
    EXPECT_EQ(nm->jumpTables[0].size(), 2u);
    for (std::uint32_t target : nm->jumpTables[0])
        EXPECT_LT(target, nm->code.size());
}

// ----------------------------------------------------------------
// Randomized differential testing: generated straight-line + looping
// integer programs must agree between interpreter and JIT.
// ----------------------------------------------------------------

class DifferentialFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialFuzz, RandomIntProgramsAgree)
{
    XorShift64 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
    // Pre-generate the op plan so both builds produce the same code.
    struct OpPlan {
        std::uint8_t a, b, dst;
        std::uint64_t kind;
    };
    std::vector<OpPlan> plan;
    for (int i = 0; i < 12; ++i) {
        plan.push_back(
            {static_cast<std::uint8_t>(1 + rng.nextBounded(3)),
             static_cast<std::uint8_t>(1 + rng.nextBounded(3)),
             static_cast<std::uint8_t>(1 + rng.nextBounded(3)),
             rng.nextBounded(8)});
    }
    auto fill = [&plan](MethodBuilder &m) {
        m.locals(6);
        // Seed the locals from the argument.
        m.iload(0).istore(1);
        m.iload(0).iconst(17).imul().iconst(3).iadd().istore(2);
        m.iload(0).iconst(5).irem().istore(3);
        // A bounded loop applying random ALU ops to locals.
        m.iconst(12).istore(4);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(4).ifle(done);
        for (const OpPlan &op : plan) {
            m.iload(op.a).iload(op.b);
            switch (op.kind) {
              case 0: m.iadd(); break;
              case 1: m.isub(); break;
              case 2: m.imul(); break;
              case 3: m.iand(); break;
              case 4: m.ior(); break;
              case 5: m.ixor(); break;
              case 6: m.ishl(); break;
              default: m.iushr(); break;
            }
            m.istore(op.dst);
        }
        m.iinc(4, -1);
        m.gotoL(loop);
        m.bind(done);
        m.iload(1).iload(2).iadd().iload(3).ixor().ireturn();
    };
    for (std::int32_t arg : {0, 1, -1, 123456, -987654}) {
        const std::int32_t i = test::interpret(fill, arg);
        const std::int32_t j = test::jitRun(fill, arg);
        EXPECT_EQ(i, j) << "seed=" << GetParam() << " arg=" << arg;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::Range(0, 20));

class ArrayFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ArrayFuzz, RandomArrayProgramsAgree)
{
    XorShift64 rng(static_cast<std::uint64_t>(GetParam()) * 104729);
    const int n_ops = 20;
    std::vector<std::pair<int, int>> ops;  // (slot index, value)
    for (int i = 0; i < n_ops; ++i) {
        ops.emplace_back(static_cast<int>(rng.nextBounded(16)),
                         static_cast<int>(rng.nextBounded(1000)));
    }
    auto fill = [&ops](MethodBuilder &m) {
        m.locals(3);
        m.iconst(16).newArray(ArrayKind::Int).astore(1);
        for (const auto &[idx, val] : ops) {
            // a[idx] = a[(idx+3) % 16] * 3 + val
            m.aload(1).iconst(idx);
            m.aload(1).iconst((idx + 3) % 16).iaload();
            m.iconst(3).imul().iconst(val).iadd();
            m.iastore();
        }
        m.iconst(0).istore(2);
        Label loop = m.newLabel(), done = m.newLabel();
        m.iconst(0).istore(0);
        m.bind(loop);
        m.iload(0).iconst(16).ifIcmpge(done);
        m.iload(2).iconst(31).imul()
            .aload(1).iload(0).iaload().iadd().istore(2);
        m.iinc(0, 1);
        m.gotoL(loop);
        m.bind(done);
        m.iload(2).ireturn();
    };
    EXPECT_EQ(test::interpret(fill, 0), test::jitRun(fill, 0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArrayFuzz, ::testing::Range(0, 10));

TEST(NativeInst, RenderingIsReadable)
{
    NativeInst i;
    i.op = NOp::Add;
    i.rd = 1;
    i.rs1 = 2;
    i.rs2 = 3;
    const std::string s = renderNativeInst(i);
    EXPECT_NE(s.find("add"), std::string::npos);
    EXPECT_NE(s.find("r1"), std::string::npos);
    EXPECT_STREQ(nopName(NOp::CallVirtual), "callv");
}

} // namespace
} // namespace jrs
