#include <gtest/gtest.h>

#include "arch/bpred/predictors.h"
#include "arch/bpred/target_cache.h"

namespace jrs {
namespace {

TEST(TwoBit, ConvergesOnBias)
{
    TwoBitPredictor p;
    for (int i = 0; i < 4; ++i)
        p.update(0x100, true);
    EXPECT_TRUE(p.predict(0x100));
    for (int i = 0; i < 4; ++i)
        p.update(0x100, false);
    EXPECT_FALSE(p.predict(0x200));  // global: pc-independent
}

TEST(TwoBit, HysteresisSurvivesOneFlip)
{
    TwoBitPredictor p;
    for (int i = 0; i < 4; ++i)
        p.update(0, true);
    p.update(0, false);  // one not-taken
    EXPECT_TRUE(p.predict(0));
}

TEST(Bht1Level, SeparatesBranchesByPc)
{
    Bht1Level p(2048);
    for (int i = 0; i < 4; ++i) {
        p.update(0x100, true);
        p.update(0x200, false);
    }
    EXPECT_TRUE(p.predict(0x100));
    EXPECT_FALSE(p.predict(0x200));
}

TEST(Bht1Level, AliasingAtTableSize)
{
    Bht1Level p(16);
    // pcs 0x0 and 0x100 alias in a 16-entry table (pc >> 2 & 15).
    for (int i = 0; i < 4; ++i)
        p.update(0x0, true);
    EXPECT_TRUE(p.predict(0x100));
}

TEST(GShare, LearnsAlternatingPatternBhtCannot)
{
    GShare g;
    Bht1Level b;
    const std::uint64_t pc = 0x400;
    int g_wrong = 0, b_wrong = 0;
    for (int i = 0; i < 2000; ++i) {
        const bool taken = (i & 1) != 0;
        if (g.predict(pc) != taken)
            ++g_wrong;
        if (b.predict(pc) != taken)
            ++b_wrong;
        g.update(pc, taken);
        b.update(pc, taken);
    }
    EXPECT_LT(g_wrong, 50);    // history disambiguates
    EXPECT_GT(b_wrong, 800);   // counter thrashes
}

TEST(TwoLevelPc, LearnsPeriodicPattern)
{
    TwoLevelPc p;
    const std::uint64_t pc = 0x800;
    // Period-3 pattern T T N.
    int wrong = 0;
    for (int i = 0; i < 3000; ++i) {
        const bool taken = (i % 3) != 2;
        if (i > 300 && p.predict(pc) != taken)
            ++wrong;
        p.update(pc, taken);
    }
    EXPECT_LT(wrong, 100);
}

TEST(Btb, StoresAndReplacesTargets)
{
    Btb btb(16);
    EXPECT_EQ(btb.predict(0x40), 0u);
    btb.update(0x40, 0x1000);
    EXPECT_EQ(btb.predict(0x40), 0x1000u);
    btb.update(0x40, 0x2000);
    EXPECT_EQ(btb.predict(0x40), 0x2000u);
}

TEST(Btb, DirectMappedConflict)
{
    Btb btb(16);
    btb.update(0x0, 0x1000);
    btb.update(0x40, 0x2000);  // (0x40 >> 2) & 15 == 0: same entry
    EXPECT_EQ(btb.predict(0x0), 0u);
    EXPECT_EQ(btb.predict(0x40), 0x2000u);
}

TEST(PredictorBank, CountsAllFourSchemes)
{
    PredictorBank bank;
    TraceEvent ev;
    ev.kind = NKind::Branch;
    ev.pc = 0x500;
    for (int i = 0; i < 100; ++i) {
        ev.taken = true;
        bank.onEvent(ev);
    }
    const auto results = bank.results();
    ASSERT_EQ(results.size(), 4u);
    for (const auto &r : results) {
        EXPECT_EQ(r.condBranches, 100u);
        EXPECT_LT(r.condMispredicts, 10u);  // all converge on bias
    }
    EXPECT_STREQ(results[0].name, "2bit");
    EXPECT_STREQ(results[2].name, "gshare");
}

TEST(PredictorBank, IndirectTargetsGoThroughBtb)
{
    PredictorBank bank;
    TraceEvent ev;
    ev.kind = NKind::IndirectJump;
    ev.pc = 0x600;
    // Alternate between two targets: every transfer mispredicts.
    for (int i = 0; i < 100; ++i) {
        ev.target = (i & 1) ? 0x1000 : 0x2000;
        bank.onEvent(ev);
    }
    EXPECT_EQ(bank.indirects(), 100u);
    EXPECT_EQ(bank.btbMisses(), 100u);

    // Stable target: learns after one miss.
    PredictorBank bank2;
    ev.target = 0x3000;
    for (int i = 0; i < 100; ++i)
        bank2.onEvent(ev);
    EXPECT_EQ(bank2.btbMisses(), 1u);
}

TEST(PredictorBank, CombinedRateIncludesIndirects)
{
    PredictorBank bank;
    TraceEvent br;
    br.kind = NKind::Branch;
    br.pc = 0x700;
    br.taken = true;
    TraceEvent ij;
    ij.kind = NKind::IndirectCall;
    ij.pc = 0x704;
    for (int i = 0; i < 50; ++i) {
        bank.onEvent(br);
        ij.target = 0x1000 + (i % 7) * 0x40;  // rotating targets
        bank.onEvent(ij);
    }
    const auto results = bank.results();
    for (const auto &r : results) {
        EXPECT_EQ(r.indirects, 50u);
        EXPECT_GT(r.indirectMispredicts, 25u);
        EXPECT_GT(r.mispredictRate(), r.condRate());
    }
}

TEST(PredictorBank, IgnoresNonControlEvents)
{
    PredictorBank bank;
    TraceEvent ev;
    ev.kind = NKind::Load;
    bank.onEvent(ev);
    ev.kind = NKind::Jump;  // direct: statically predictable
    bank.onEvent(ev);
    EXPECT_EQ(bank.results()[0].condBranches, 0u);
    EXPECT_EQ(bank.indirects(), 0u);
}

TEST(PredictorResult, RateMath)
{
    PredictorResult r{"x", 80, 8, 20, 12};
    EXPECT_DOUBLE_EQ(r.condRate(), 0.1);
    EXPECT_DOUBLE_EQ(r.mispredictRate(), 0.2);
}

TEST(TargetCache, LearnsPeriodicTargetSequenceBtbCannot)
{
    // One indirect site cycling through 4 targets (an interpreter
    // dispatch running a 4-bytecode loop body).
    Btb btb(1024);
    TargetCache tc(1024);
    const std::uint64_t pc = 0x1000;
    const std::uint64_t targets[4] = {0x2000, 0x2100, 0x2200, 0x2300};
    int btb_miss = 0, tc_miss = 0;
    for (int i = 0; i < 4000; ++i) {
        const std::uint64_t t = targets[i % 4];
        if (btb.predict(pc) != t)
            ++btb_miss;
        btb.update(pc, t);
        if (tc.predict(pc) != t)
            ++tc_miss;
        tc.update(pc, t);
    }
    EXPECT_GT(btb_miss, 3900);  // always wrong after the first lap
    EXPECT_LT(tc_miss, 50);     // path history disambiguates
}

TEST(TargetCache, StableTargetLearnsWithinHistoryWarmup)
{
    // The folded path history needs a few updates to reach its fixed
    // point; after that a stable target always hits.
    TargetCache tc(64);
    int miss = 0;
    for (int i = 0; i < 100; ++i) {
        if (tc.predict(0x40) != 0x900)
            ++miss;
        tc.update(0x40, 0x900);
    }
    EXPECT_LE(miss, 5);
    EXPECT_GE(miss, 1);
}

TEST(TargetCache, ColdEntryPredictsZero)
{
    TargetCache tc(64);
    EXPECT_EQ(tc.predict(0x123), 0u);
    EXPECT_EQ(tc.entries(), 64u);
}

} // namespace
} // namespace jrs
