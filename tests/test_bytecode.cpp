#include <gtest/gtest.h>

#include "vm/bytecode/assembler.h"
#include "vm/bytecode/decode.h"
#include "vm/bytecode/disassembler.h"
#include "vm/bytecode/opcode.h"
#include "vm_test_util.h"

namespace jrs {
namespace {

TEST(Opcode, NamesAreUnique)
{
    for (std::size_t a = 0; a < kNumOpcodes; ++a) {
        for (std::size_t b = a + 1; b < kNumOpcodes; ++b) {
            EXPECT_STRNE(opName(static_cast<Op>(a)),
                         opName(static_cast<Op>(b)));
        }
    }
}

TEST(Opcode, OperandBytesSane)
{
    EXPECT_EQ(operandBytes(Op::Nop), 0);
    EXPECT_EQ(operandBytes(Op::Iconst8), 1);
    EXPECT_EQ(operandBytes(Op::Iconst32), 4);
    EXPECT_EQ(operandBytes(Op::Goto), 2);
    EXPECT_EQ(operandBytes(Op::TableSwitch), -1);
    EXPECT_EQ(operandBytes(Op::LookupSwitch), -1);
    EXPECT_EQ(operandBytes(Op::InvokeVirtual), 2);
}

TEST(Opcode, ConditionalBranchClassification)
{
    EXPECT_TRUE(isConditionalBranch(Op::Ifeq));
    EXPECT_TRUE(isConditionalBranch(Op::IfIcmple));
    EXPECT_TRUE(isConditionalBranch(Op::Ifnonnull));
    EXPECT_FALSE(isConditionalBranch(Op::Goto));
    EXPECT_FALSE(isConditionalBranch(Op::TableSwitch));
    EXPECT_FALSE(isConditionalBranch(Op::Iadd));
}

TEST(Opcode, EndsBasicBlock)
{
    EXPECT_TRUE(endsBasicBlock(Op::Goto));
    EXPECT_TRUE(endsBasicBlock(Op::Ireturn));
    EXPECT_TRUE(endsBasicBlock(Op::Athrow));
    EXPECT_TRUE(endsBasicBlock(Op::LookupSwitch));
    EXPECT_FALSE(endsBasicBlock(Op::Ifeq));
    EXPECT_FALSE(endsBasicBlock(Op::InvokeStatic));
}

TEST(Opcode, ArrayElemSizes)
{
    EXPECT_EQ(arrayElemSize(ArrayKind::Int), 4u);
    EXPECT_EQ(arrayElemSize(ArrayKind::Float), 4u);
    EXPECT_EQ(arrayElemSize(ArrayKind::Char), 2u);
    EXPECT_EQ(arrayElemSize(ArrayKind::Byte), 1u);
    EXPECT_EQ(arrayElemSize(ArrayKind::Ref), 4u);
}

TEST(Decode, LittleEndianRoundTrips)
{
    std::vector<std::uint8_t> code = {0x78, 0x56, 0x34, 0x12, 0xff};
    EXPECT_EQ(readU8(code, 0), 0x78);
    EXPECT_EQ(readS8(code, 4), -1);
    EXPECT_EQ(readU16(code, 0), 0x5678);
    EXPECT_EQ(readS32(code, 0), 0x12345678);
}

TEST(Assembler, IconstPicksCompactForm)
{
    const Program p = test::makeProgram([](MethodBuilder &m) {
        m.iconst(5).pop().iconst(1000).pop().iconst(0).ireturn();
    });
    const Method &main = p.methods[0];
    EXPECT_EQ(main.opAt(0), Op::Iconst8);
    // iconst8 is 2 bytes, pop is 1: the wide constant starts at 3.
    EXPECT_EQ(main.opAt(3), Op::Iconst32);
}

TEST(Assembler, ComputesMaxStack)
{
    const Program p = test::makeProgram([](MethodBuilder &m) {
        m.iconst(1).iconst(2).iconst(3).iadd().iadd().ireturn();
    });
    EXPECT_EQ(p.methods[0].maxStack, 3);
}

TEST(Assembler, BackwardBranchResolves)
{
    // Count down from arg to 0.
    const std::int32_t r = test::interpret(
        [](MethodBuilder &m) {
            Label loop = m.newLabel(), done = m.newLabel();
            m.locals(2);
            m.bind(loop);
            m.iload(0).ifle(done);
            m.iinc(0, -1);
            m.iinc(1, 1);
            m.gotoL(loop);
            m.bind(done);
            m.iload(1).ireturn();
        },
        7);
    EXPECT_EQ(r, 7);
}

TEST(Assembler, RejectsUnboundLabel)
{
    EXPECT_THROW(test::makeProgram([](MethodBuilder &m) {
                     Label l = m.newLabel();
                     m.gotoL(l);  // never bound
                 }),
                 AssemblerError);
}

TEST(Assembler, RejectsDoubleBind)
{
    EXPECT_THROW(test::makeProgram([](MethodBuilder &m) {
                     Label l = m.newLabel();
                     m.bind(l);
                     m.bind(l);
                     m.iconst(0).ireturn();
                 }),
                 AssemblerError);
}

TEST(Assembler, RejectsStackUnderflow)
{
    EXPECT_THROW(test::makeProgram([](MethodBuilder &m) {
                     m.iadd().ireturn();  // nothing to add
                 }),
                 AssemblerError);
}

TEST(Assembler, RejectsInconsistentDepthAtMerge)
{
    EXPECT_THROW(test::makeProgram([](MethodBuilder &m) {
                     Label merge = m.newLabel();
                     m.iload(0).ifeq(merge);
                     m.iconst(1);  // depth 1 on fallthrough
                     m.bind(merge);
                     m.iconst(0).ireturn();
                 }),
                 AssemblerError);
}

TEST(Assembler, RejectsUnknownMethodSymbol)
{
    EXPECT_THROW(test::makeProgram([](MethodBuilder &m) {
                     m.invokeStatic("Nope.nothing").ireturn();
                 }),
                 AssemblerError);
}

TEST(Assembler, RejectsUnknownField)
{
    EXPECT_THROW(
        test::makeProgramFull([](ProgramBuilder &pb) {
            ClassBuilder &c = pb.cls("T");
            MethodBuilder &m =
                c.staticMethod("main", {VType::Int}, VType::Int);
            m.aconstNull().getFieldI("T.missing").ireturn();
        }),
        AssemblerError);
}

TEST(Assembler, RejectsDuplicateClass)
{
    EXPECT_THROW(test::makeProgramFull([](ProgramBuilder &pb) {
                     pb.cls("A");
                     pb.cls("A");
                 }),
                 AssemblerError);
}

TEST(Assembler, RejectsUndeclaredSuperclass)
{
    EXPECT_THROW(test::makeProgramFull([](ProgramBuilder &pb) {
                     pb.cls("B", "MissingSuper");
                 }),
                 AssemblerError);
}

TEST(Assembler, RejectsEmptyMethod)
{
    EXPECT_THROW(test::makeProgramFull([](ProgramBuilder &pb) {
                     ClassBuilder &c = pb.cls("T");
                     c.staticMethod("main", {VType::Int}, VType::Int);
                 }),
                 AssemblerError);
}

TEST(Assembler, RejectsMissingEntry)
{
    EXPECT_THROW(test::makeProgramFull(
                     [](ProgramBuilder &pb) {
                         ClassBuilder &c = pb.cls("T");
                         MethodBuilder &m = c.staticMethod(
                             "other", {VType::Int}, VType::Int);
                         m.iconst(0).ireturn();
                     },
                     "T.main"),
                 AssemblerError);
}

TEST(Assembler, StringLiteralsInterned)
{
    ProgramBuilder pb("t");
    EXPECT_EQ(pb.stringLiteral("abc"), 0);
    EXPECT_EQ(pb.stringLiteral("def"), 1);
    EXPECT_EQ(pb.stringLiteral("abc"), 0);
}

TEST(Assembler, FieldInheritanceLaysOutSlots)
{
    const Program p = test::makeProgramFull([](ProgramBuilder &pb) {
        ClassBuilder &base = pb.cls("Base");
        base.field("a");
        base.field("b");
        ClassBuilder &derived = pb.cls("Derived", "Base");
        const std::uint16_t c = derived.field("c");
        EXPECT_EQ(c, 2);
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.iconst(0).ireturn();
    });
    EXPECT_EQ(p.findClass("Derived")->numFields, 3);
    EXPECT_EQ(p.findClass("Base")->numFields, 2);
}

TEST(Assembler, VtableOverrideKeepsSlot)
{
    const Program p = test::makeProgramFull([](ProgramBuilder &pb) {
        ClassBuilder &base = pb.cls("Base");
        {
            MethodBuilder &m = base.virtualMethod("f", {}, VType::Int);
            m.iconst(1).ireturn();
        }
        ClassBuilder &derived = pb.cls("Derived", "Base");
        {
            MethodBuilder &m =
                derived.virtualMethod("f", {}, VType::Int);
            m.iconst(2).ireturn();
        }
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.iconst(0).ireturn();
    });
    const ClassDef *base = p.findClass("Base");
    const ClassDef *derived = p.findClass("Derived");
    const int slot = base->vslotOf("f");
    ASSERT_GE(slot, 0);
    EXPECT_EQ(derived->vslotOf("f"), slot);
    EXPECT_NE(base->vtable[slot], derived->vtable[slot]);
}

TEST(Assembler, GlobalSlotsAreUniqueAcrossHierarchies)
{
    const Program p = test::makeProgramFull([](ProgramBuilder &pb) {
        ClassBuilder &a = pb.cls("A");
        {
            MethodBuilder &m = a.virtualMethod("f", {}, VType::Int);
            m.iconst(1).ireturn();
        }
        ClassBuilder &b = pb.cls("B");
        {
            MethodBuilder &m =
                b.virtualMethod("g", {VType::Int}, VType::Int);
            m.iload(1).ireturn();
        }
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.iconst(0).ireturn();
    });
    EXPECT_NE(p.findClass("A")->vslotOf("f"),
              p.findClass("B")->vslotOf("g"));
}

TEST(Assembler, IsSubclassOfWalksChain)
{
    const Program p = test::makeProgramFull([](ProgramBuilder &pb) {
        pb.cls("A");
        pb.cls("B", "A");
        pb.cls("C", "B");
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.iconst(0).ireturn();
    });
    const ClassId a = p.findClass("A")->id;
    const ClassId b = p.findClass("B")->id;
    const ClassId c = p.findClass("C")->id;
    EXPECT_TRUE(isSubclassOf(p, c, a));
    EXPECT_TRUE(isSubclassOf(p, c, b));
    EXPECT_TRUE(isSubclassOf(p, b, a));
    EXPECT_FALSE(isSubclassOf(p, a, b));
}

TEST(Assembler, InstrLengthCoversSwitches)
{
    const Program p = test::makeProgram([](MethodBuilder &m) {
        Label a = m.newLabel(), b = m.newLabel(), d = m.newLabel();
        m.iload(0);
        m.tableSwitch(0, {a, b}, d);
        m.bind(a);
        m.iconst(10).ireturn();
        m.bind(b);
        m.iconst(20).ireturn();
        m.bind(d);
        m.iconst(30).ireturn();
    });
    const Method &main = p.methods[0];
    // iload is 2 bytes; tableswitch follows.
    EXPECT_EQ(main.opAt(2), Op::TableSwitch);
    EXPECT_EQ(instrLength(main.code, 2), 1u + 2 + 4 + 2 + 2 * 2);
}

TEST(Assembler, ComputeStackDepthsMarksUnreachable)
{
    const Program p = test::makeProgram([](MethodBuilder &m) {
        Label end = m.newLabel();
        m.gotoL(end);
        m.iconst(99).pop();  // unreachable
        m.bind(end);
        m.iconst(0).ireturn();
    });
    const auto depths = computeStackDepths(p.methods[0], p);
    EXPECT_EQ(depths[0], 0);   // goto
    EXPECT_EQ(depths[3], -1);  // unreachable iconst
}

TEST(Disassembler, RendersInstructions)
{
    const Program p = test::makeProgram([](MethodBuilder &m) {
        Label l = m.newLabel();
        m.iload(0).ifgt(l);
        m.iconst(-5).ireturn();
        m.bind(l);
        m.iconst(123456).ireturn();
    });
    const std::string text = disassemble(p.methods[0]);
    EXPECT_NE(text.find("iload 0"), std::string::npos);
    EXPECT_NE(text.find("ifgt"), std::string::npos);
    EXPECT_NE(text.find("123456"), std::string::npos);
    EXPECT_NE(text.find("ireturn"), std::string::npos);
}

TEST(Disassembler, ShowsBranchTargets)
{
    const Program p = test::makeProgram([](MethodBuilder &m) {
        Label l = m.newLabel();
        m.bind(l);
        m.iinc(0, -1);
        m.iload(0).ifgt(l);
        m.iconst(0).ireturn();
    });
    const std::string text = disassemble(p.methods[0]);
    EXPECT_NE(text.find("-> 0"), std::string::npos);
}

TEST(Program, FindersWork)
{
    const Program p = test::makeProgram(
        [](MethodBuilder &m) { m.iconst(0).ireturn(); });
    EXPECT_NE(p.findMethod("T.main"), nullptr);
    EXPECT_EQ(p.findMethod("T.other"), nullptr);
    EXPECT_NE(p.findClass("T"), nullptr);
    EXPECT_EQ(p.findClass("U"), nullptr);
    EXPECT_GT(p.totalBytecodeBytes(), 0u);
}

TEST(Program, BytecodeAddressesAreDisjoint)
{
    const Program p = test::makeProgramFull([](ProgramBuilder &pb) {
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &a =
            t.staticMethod("main", {VType::Int}, VType::Int);
        a.iconst(0).ireturn();
        MethodBuilder &b = t.staticMethod("f", {}, VType::Int);
        b.iconst(1).ireturn();
    });
    const Method &m0 = p.methods[0];
    const Method &m1 = p.methods[1];
    EXPECT_GE(m1.bytecodeAddr, m0.bytecodeAddr + m0.code.size());
}

} // namespace
} // namespace jrs
