/**
 * The shared startup "class library": functional correctness of its
 * methods (they are real code every workload executes) and the
 * properties the experiments rely on — cold one-shot methods plus
 * synchronized bookkeeping with a dominant case-(a) profile.
 */
#include <gtest/gtest.h>

#include "vm_test_util.h"
#include "workloads/startup_lib.h"
#include "workloads/workload.h"

namespace jrs {
namespace {

/** Build a program whose entry wraps one library call. */
Program
libProgram(const std::function<void(MethodBuilder &)> &fill)
{
    ProgramBuilder pb("libtest");
    addStartupLibrary(pb);
    ClassBuilder &t = pb.cls("T");
    MethodBuilder &m = t.staticMethod("main", {VType::Int}, VType::Int);
    fill(m);
    return pb.finish("T.main");
}

std::int32_t
runLib(const std::function<void(MethodBuilder &)> &fill,
       std::int32_t arg = 0)
{
    const Program p1 = libProgram(fill);
    const RunResult a = test::runProgram(
        p1, arg, std::make_shared<NeverCompilePolicy>());
    EXPECT_TRUE(a.completed);
    const Program p2 = libProgram(fill);
    const RunResult b = test::runProgram(
        p2, arg, std::make_shared<AlwaysCompilePolicy>());
    EXPECT_TRUE(b.completed);
    EXPECT_EQ(a.exitValue, b.exitValue);
    return a.exitValue;
}

TEST(StartupLib, IsqrtIsExactOnSquaresAndMonotone)
{
    auto prog = [](MethodBuilder &m) {
        m.iload(0).invokeStatic("LibMath.isqrt").ireturn();
    };
    EXPECT_EQ(runLib(prog, 0), 0);
    EXPECT_EQ(runLib(prog, 1), 1);
    EXPECT_EQ(runLib(prog, 144), 12);
    EXPECT_EQ(runLib(prog, 145), 12);
    EXPECT_EQ(runLib(prog, 1000000), 1000);
    EXPECT_EQ(runLib(prog, -5), 0);
}

TEST(StartupLib, GcdMatchesEuclid)
{
    auto prog = [](MethodBuilder &m) {
        m.iload(0).iconst(84).invokeStatic("LibMath.gcd").ireturn();
    };
    EXPECT_EQ(runLib(prog, 36), 12);
    EXPECT_EQ(runLib(prog, 85), 1);
    EXPECT_EQ(runLib(prog, 84), 84);
}

TEST(StartupLib, Ilog2)
{
    auto prog = [](MethodBuilder &m) {
        m.iload(0).invokeStatic("LibMath.ilog2").ireturn();
    };
    EXPECT_EQ(runLib(prog, 1), 0);
    EXPECT_EQ(runLib(prog, 2), 1);
    EXPECT_EQ(runLib(prog, 1024), 10);
    EXPECT_EQ(runLib(prog, 1023), 9);
}

TEST(StartupLib, Clamp)
{
    auto prog = [](MethodBuilder &m) {
        m.iload(0).iconst(-10).iconst(10)
            .invokeStatic("LibMath.clamp").ireturn();
    };
    EXPECT_EQ(runLib(prog, 5), 5);
    EXPECT_EQ(runLib(prog, -50), -10);
    EXPECT_EQ(runLib(prog, 50), 10);
}

TEST(StartupLib, FmtHashAndEq)
{
    EXPECT_EQ(runLib([](MethodBuilder &m) {
        m.ldcStr("ab").invokeStatic("LibFmt.hash").ireturn();
    }), 31 * 'a' + 'b');
    EXPECT_EQ(runLib([](MethodBuilder &m) {
        m.ldcStr("xyz").ldcStr("xyz").invokeStatic("LibFmt.eq")
            .ireturn();
    }), 1);
    EXPECT_EQ(runLib([](MethodBuilder &m) {
        m.ldcStr("xyz").ldcStr("xyw").invokeStatic("LibFmt.eq")
            .ireturn();
    }), 0);
    EXPECT_EQ(runLib([](MethodBuilder &m) {
        m.ldcStr("xyz").ldcStr("xy").invokeStatic("LibFmt.eq")
            .ireturn();
    }), 0);
}

TEST(StartupLib, ItoaWritesDigits)
{
    // itoa(4207, buf) returns the digit count; check the last digit.
    EXPECT_EQ(runLib([](MethodBuilder &m) {
        m.locals(2);
        m.iconst(12).newArray(ArrayKind::Char).astore(1);
        m.iconst(4207).aload(1).invokeStatic("LibFmt.itoa");
        // length * 1000 + last char
        m.iconst(1000).imul();
        m.aload(1).iconst(11).caload().iadd().ireturn();
    }), 4 * 1000 + '7');
}

TEST(StartupLib, StrHelpers)
{
    EXPECT_EQ(runLib([](MethodBuilder &m) {
        m.ldcStr("hello world").iconst('w')
            .invokeStatic("LibStr.indexOf").ireturn();
    }), 6);
    EXPECT_EQ(runLib([](MethodBuilder &m) {
        m.ldcStr("hello world").iconst('z')
            .invokeStatic("LibStr.indexOf").ireturn();
    }), -1);
    EXPECT_EQ(runLib([](MethodBuilder &m) {
        m.ldcStr("a b c").invokeStatic("LibStr.trim").ireturn();
    }), 3);
}

TEST(StartupLib, VecPushSumReverse)
{
    EXPECT_EQ(runLib([](MethodBuilder &m) {
        m.locals(2);
        m.newObject("LibVec").astore(1);
        m.aload(1).iconst(4).invokeSpecial("LibVec.init");
        m.aload(1).iconst(10).invokeVirtual("LibVec.push");
        m.aload(1).iconst(20).invokeVirtual("LibVec.push");
        m.aload(1).iconst(30).invokeVirtual("LibVec.push");
        m.aload(1).invokeVirtual("LibVec.reverse");
        // after reverse: [30, 20, 10]
        m.aload(1).iconst(0).invokeVirtual("LibVec.at").iconst(100)
            .imul();
        m.aload(1).invokeVirtual("LibVec.sum").iadd().ireturn();
    }), 30 * 100 + 60);
}

TEST(StartupLib, LogIsSynchronizedAndBounded)
{
    const Program prog = libProgram([](MethodBuilder &m) {
        m.locals(3);
        m.newObject("LibLog").astore(1);
        m.aload(1).iconst(4).invokeSpecial("LibLog.init");
        // Append 10 chars into a 4-char buffer: len saturates at 4.
        m.iconst(0).istore(2);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(2).iconst(10).ifIcmpge(done);
        m.aload(1).iconst('x').invokeVirtual("LibLog.append");
        m.iinc(2, 1);
        m.gotoL(loop);
        m.bind(done);
        m.aload(1).invokeVirtual("LibLog.size").ireturn();
    });
    const RunResult r = test::runProgram(prog, 0);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.exitValue, 4);
    EXPECT_GT(r.lockStats.totalAccesses(), 10u);
    // Nested note() calls give case (b); plain appends case (a).
    EXPECT_GT(r.lockStats.caseCount[0], 0u);
    EXPECT_GT(r.lockStats.caseCount[1], 0u);
}

TEST(StartupLib, BootIsDeterministicAndCold)
{
    const Program p1 = libProgram([](MethodBuilder &m) {
        m.iload(0).invokeStatic("Lib.boot").ireturn();
    });
    const RunResult a = test::runProgram(
        p1, 7, std::make_shared<NeverCompilePolicy>());
    const Program p2 = libProgram([](MethodBuilder &m) {
        m.iload(0).invokeStatic("Lib.boot").ireturn();
    });
    const RunResult b = test::runProgram(
        p2, 7, std::make_shared<AlwaysCompilePolicy>());
    ASSERT_TRUE(a.completed);
    ASSERT_TRUE(b.completed);
    EXPECT_EQ(a.exitValue, b.exitValue);
    // Boot is one-shot: compiling it is mostly wasted translation, the
    // property Figure 1's oracle exploits.
    EXPECT_GT(b.inPhase(Phase::Translate), b.inPhase(Phase::NativeExec));
}

} // namespace
} // namespace jrs
