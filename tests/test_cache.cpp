#include <gtest/gtest.h>

#include "arch/cache/cache.h"
#include "arch/cache/time_series.h"
#include "vm/runtime/vm_error.h"

namespace jrs {
namespace {

TEST(Cache, ColdMissThenHit)
{
    Cache c({1024, 32, 1, true});
    EXPECT_FALSE(c.access(0x1000, false, Phase::Interpret));
    EXPECT_TRUE(c.access(0x1000, false, Phase::Interpret));
    EXPECT_TRUE(c.access(0x101f, false, Phase::Interpret));  // same line
    EXPECT_FALSE(c.access(0x1020, false, Phase::Interpret));  // next line
    EXPECT_EQ(c.stats().reads, 4u);
    EXPECT_EQ(c.stats().readMisses, 2u);
}

TEST(Cache, DirectMappedConflict)
{
    Cache c({1024, 32, 1, true});  // 32 sets
    const std::uint64_t a = 0x0000;
    const std::uint64_t b = a + 1024;  // same set, different tag
    EXPECT_FALSE(c.access(a, false, Phase::Interpret));
    EXPECT_FALSE(c.access(b, false, Phase::Interpret));
    EXPECT_FALSE(c.access(a, false, Phase::Interpret));  // evicted
}

TEST(Cache, TwoWayHoldsBothConflictingLines)
{
    Cache c({1024, 32, 2, true});
    const std::uint64_t a = 0x0000;
    const std::uint64_t b = a + 512;  // same set in a 16-set cache
    EXPECT_FALSE(c.access(a, false, Phase::Interpret));
    EXPECT_FALSE(c.access(b, false, Phase::Interpret));
    EXPECT_TRUE(c.access(a, false, Phase::Interpret));
    EXPECT_TRUE(c.access(b, false, Phase::Interpret));
}

TEST(Cache, LruEvictsLeastRecent)
{
    Cache c({256, 32, 2, true});  // 4 sets
    const std::uint64_t s = 0;    // set 0 lines: 0, 128, 256, ...
    c.access(s + 0 * 128, false, Phase::Interpret);    // A
    c.access(s + 1 * 128, false, Phase::Interpret);    // B
    c.access(s + 0 * 128, false, Phase::Interpret);    // touch A (MRU)
    c.access(s + 2 * 128, false, Phase::Interpret);    // C evicts B
    EXPECT_TRUE(c.probe(s + 0 * 128));
    EXPECT_FALSE(c.probe(s + 1 * 128));
    EXPECT_TRUE(c.probe(s + 2 * 128));
}

TEST(Cache, WriteAllocateFillsLine)
{
    Cache c({1024, 32, 1, true});
    EXPECT_FALSE(c.access(0x40, true, Phase::Interpret));
    EXPECT_TRUE(c.access(0x40, false, Phase::Interpret));
    EXPECT_EQ(c.stats().writeMisses, 1u);
}

TEST(Cache, WriteNoAllocateLeavesLineCold)
{
    Cache c({1024, 32, 1, false});
    EXPECT_FALSE(c.access(0x40, true, Phase::Interpret));
    EXPECT_FALSE(c.access(0x40, false, Phase::Interpret));
    EXPECT_EQ(c.stats().writeMisses, 1u);
    EXPECT_EQ(c.stats().readMisses, 1u);
}

TEST(Cache, PhaseSplitAccounting)
{
    Cache c({1024, 32, 1, true});
    c.access(0x0, false, Phase::Interpret);
    c.access(0x100, true, Phase::Translate);
    c.access(0x200, false, Phase::Translate);
    EXPECT_EQ(c.phaseStats(Phase::Interpret).reads, 1u);
    EXPECT_EQ(c.phaseStats(Phase::Translate).writes, 1u);
    EXPECT_EQ(c.phaseStats(Phase::Translate).reads, 1u);
    const CacheStats rest = c.statsExcluding(Phase::Translate);
    EXPECT_EQ(rest.reads, 1u);
    EXPECT_EQ(rest.writes, 0u);
    EXPECT_EQ(c.stats().accesses(), 3u);
}

TEST(Cache, StatsHelpers)
{
    CacheStats s;
    s.reads = 80;
    s.writes = 20;
    s.readMisses = 5;
    s.writeMisses = 15;
    EXPECT_EQ(s.accesses(), 100u);
    EXPECT_EQ(s.misses(), 20u);
    EXPECT_DOUBLE_EQ(s.missRate(), 0.2);
    EXPECT_DOUBLE_EQ(s.writeMissFraction(), 0.75);
}

TEST(Cache, RejectsBadConfig)
{
    EXPECT_THROW(Cache({1000, 32, 1, true}), VmError);  // not pow2
    EXPECT_THROW(Cache({1024, 32, 0, true}), VmError);  // zero assoc
    EXPECT_THROW(Cache({1024, 24, 1, true}), VmError);  // bad line
}

TEST(Cache, ResetStats)
{
    Cache c({1024, 32, 1, true});
    c.access(0x0, false, Phase::Interpret);
    c.resetStats();
    EXPECT_EQ(c.stats().accesses(), 0u);
    EXPECT_EQ(c.phaseStats(Phase::Interpret).accesses(), 0u);
    // Contents survive a stats reset.
    EXPECT_TRUE(c.access(0x0, false, Phase::Interpret));
}

/**
 * Property: for a fixed reference stream and set count, LRU misses are
 * non-increasing in associativity (the stack-inclusion property).
 */
class AssocSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AssocSweep, LruInclusionProperty)
{
    const std::uint32_t assoc = GetParam();
    // Keep the set count constant: size scales with assoc.
    Cache small({256u * assoc, 32, assoc, true});
    Cache bigger({256u * assoc * 2, 32, assoc * 2, true});
    std::uint64_t seed = 99;
    std::uint64_t misses_small = 0, misses_big = 0;
    for (int i = 0; i < 20000; ++i) {
        seed = seed * 6364136223846793005ull + 1442695040888963407ull;
        const std::uint64_t addr = (seed >> 30) & 0x3fff;
        if (!small.access(addr, false, Phase::Interpret))
            ++misses_small;
        if (!bigger.access(addr, false, Phase::Interpret))
            ++misses_big;
    }
    EXPECT_LE(misses_big, misses_small);
}

INSTANTIATE_TEST_SUITE_P(Assocs, AssocSweep,
                         ::testing::Values(1u, 2u, 4u));

/** Property: accesses are conserved across phase counters. */
class PhaseConservation
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PhaseConservation, SumOfPhasesEqualsTotal)
{
    Cache c({4096, GetParam(), 2, true});
    std::uint64_t seed = 5;
    for (int i = 0; i < 5000; ++i) {
        seed = seed * 2862933555777941757ull + 3037000493ull;
        c.access((seed >> 20) & 0xffff, (seed & 1) != 0,
                 static_cast<Phase>((seed >> 8) & 3));
    }
    CacheStats sum;
    for (std::size_t p = 0; p < kNumPhases; ++p) {
        const CacheStats &ps = c.phaseStats(static_cast<Phase>(p));
        sum.reads += ps.reads;
        sum.writes += ps.writes;
        sum.readMisses += ps.readMisses;
        sum.writeMisses += ps.writeMisses;
    }
    EXPECT_EQ(sum.reads, c.stats().reads);
    EXPECT_EQ(sum.writes, c.stats().writes);
    EXPECT_EQ(sum.readMisses, c.stats().readMisses);
    EXPECT_EQ(sum.writeMisses, c.stats().writeMisses);
}

INSTANTIATE_TEST_SUITE_P(LineSizes, PhaseConservation,
                         ::testing::Values(16u, 32u, 64u, 128u));

TEST(CacheSink, RoutesIAndDAccesses)
{
    CacheSink sink({1024, 32, 1, true}, {1024, 32, 1, true});
    TraceEvent ev;
    ev.pc = 0x100;
    ev.kind = NKind::IntAlu;
    sink.onEvent(ev);
    EXPECT_EQ(sink.icache().stats().accesses(), 1u);
    EXPECT_EQ(sink.dcache().stats().accesses(), 0u);

    ev.kind = NKind::Load;
    ev.mem = 0x4000;
    sink.onEvent(ev);
    EXPECT_EQ(sink.dcache().stats().reads, 1u);

    ev.kind = NKind::Store;
    sink.onEvent(ev);
    EXPECT_EQ(sink.dcache().stats().writes, 1u);
    EXPECT_EQ(sink.icache().stats().accesses(), 3u);
}

TEST(TimeSeries, WindowsPartitionTheRun)
{
    TimeSeriesCacheSink ts({1024, 32, 1, true}, {1024, 32, 1, true},
                           100);
    TraceEvent ev;
    ev.kind = NKind::Load;
    for (int i = 0; i < 250; ++i) {
        ev.pc = 0x100 + (i % 3) * 0x1000;
        ev.mem = 0x8000 + i * 64;
        ts.onEvent(ev);
    }
    ts.onFinish();
    ASSERT_EQ(ts.samples().size(), 3u);  // 100 + 100 + 50
    std::uint64_t d_total = 0;
    for (const MissSample &s : ts.samples())
        d_total += s.dMisses;
    EXPECT_EQ(d_total, ts.dcache().stats().misses());
}

TEST(TimeSeries, TranslatePhaseCounted)
{
    TimeSeriesCacheSink ts({1024, 32, 1, true}, {1024, 32, 1, true},
                           10);
    TraceEvent ev;
    ev.kind = NKind::Store;
    ev.phase = Phase::Translate;
    ev.mem = 0x9000;
    for (int i = 0; i < 10; ++i)
        ts.onEvent(ev);
    ASSERT_EQ(ts.samples().size(), 1u);
    EXPECT_EQ(ts.samples()[0].translateEvents, 10u);
    EXPECT_GE(ts.samples()[0].dWriteMisses, 1u);
}

} // namespace
} // namespace jrs
