/**
 * @file
 * jrs::prof contract tests (prof/cct.h + prof/bench.h):
 *
 *  - Conservation: a CCT pass observes exactly
 *    PipelineSim::instructions() events and cycles() cycles, and both
 *    totals equal the sum over nodes of self events/cycles, per
 *    workload and mode — regardless of stack shape.
 *  - Non-perturbation: a pipeline observed by a CctBuilder produces
 *    bit-identical timing to a bare one (profiler on == profiler off).
 *  - Golden stream digests: the hello streams hash to pinned values,
 *    so refactors of the trace-visible stub addresses
 *    (isa/address_map.h) cannot silently change recorded streams.
 *  - Frame discipline on synthetic streams: recursion chains
 *    contexts, unmatched/mismatched Rets are counted and ignored,
 *    Translate frames only close on the install return (or are
 *    abandoned), depth overflow suppresses pushes without losing
 *    events.
 *  - Golden folded-flamegraph fixture from hand-built events.
 *  - jrs-bench-v1 reports round-trip through their JSON and
 *    compareReports() passes on self, fails on an injected
 *    regression.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "arch/pipeline/pipeline.h"
#include "gc/collector.h"
#include "harness/experiment.h"
#include "isa/address_map.h"
#include "isa/trace_buffer.h"
#include "obs/attribution.h"
#include "prof/bench.h"
#include "prof/cct.h"
#include "vm/engine/policy.h"
#include "vm/runtime/vm_error.h"
#include "workloads/workload.h"

namespace jrs {
namespace {

/** Unique-per-test temp dir, removed at scope exit. */
struct TempDir {
    explicit TempDir(const std::string &leaf)
        : path(std::string(::testing::TempDir()) + leaf)
    {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }
    std::string path;
};

std::shared_ptr<CompilationPolicy>
policyFor(const std::string &mode)
{
    if (mode == "interp")
        return std::make_shared<NeverCompilePolicy>();
    if (mode == "jit")
        return std::make_shared<AlwaysCompilePolicy>();
    return std::make_shared<CounterPolicy>(8);
}

/** Record one tiny run; every test replays offline from here. */
RecordedRun
recordTiny(const char *workload, const std::string &mode)
{
    const WorkloadInfo *w = findWorkload(workload);
    EXPECT_NE(w, nullptr) << workload;
    RunSpec s;
    s.workload = w;
    s.arg = w->tinyArg;
    s.policy = policyFor(mode);
    return recordWorkload(s);
}

/** The workload x mode matrix the conservation tests run over. */
const std::vector<std::pair<const char *, const char *>> kMatrix = {
    {"hello", "interp"},    {"hello", "jit"},  {"hello", "counter"},
    {"compress", "interp"}, {"compress", "jit"},
    {"db", "jit"},          {"db", "counter"},
};

TEST(Cct, ConservesPipelineCyclesAndEvents)
{
    for (const auto &[workload, mode] : kMatrix) {
        SCOPED_TRACE(std::string(workload) + "/" + mode);
        const RecordedRun rec = recordTiny(workload, mode);
        ASSERT_NE(rec.methods, nullptr);
        prof::CctPipeline sink(PipelineConfig{}, rec.methods);
        rec.trace->replay(sink);
        const prof::CctBuilder &cct = sink.cct();
        const PipelineSim &pipe = sink.pipeline();

        // Totals match the model exactly.
        EXPECT_EQ(cct.totalEvents(), pipe.instructions());
        EXPECT_EQ(cct.totalCycles(), pipe.cycles());

        // And decompose exactly over the tree: every event and every
        // CPI-stack sample landed in exactly one node.
        std::uint64_t events = 0, cycles = 0;
        std::uint64_t phaseEvents = 0, phaseCycles = 0;
        for (const prof::CctNode &n : cct.nodes()) {
            events += n.events;
            cycles += n.cycles();
            for (std::size_t p = 0; p < kNumPhases; ++p) {
                phaseEvents += n.phaseEvents[p];
                phaseCycles += n.phaseCycles[p];
            }
        }
        EXPECT_EQ(events, cct.totalEvents());
        EXPECT_EQ(cycles, cct.totalCycles());
        EXPECT_EQ(phaseEvents, cct.totalEvents());
        EXPECT_EQ(phaseCycles, cct.totalCycles());
    }
}

TEST(Cct, ObserverDoesNotPerturbPipeline)
{
    for (const auto &[workload, mode] : kMatrix) {
        SCOPED_TRACE(std::string(workload) + "/" + mode);
        const RecordedRun rec = recordTiny(workload, mode);
        PipelineSim bare((PipelineConfig()));
        rec.trace->replay(bare);
        prof::CctPipeline observed(PipelineConfig{}, rec.methods);
        rec.trace->replay(observed);

        // Profiler on == profiler off, bit for bit.
        EXPECT_EQ(observed.pipeline().cycles(), bare.cycles());
        EXPECT_EQ(observed.pipeline().instructions(),
                  bare.instructions());
        EXPECT_EQ(observed.pipeline().mispredicts(),
                  bare.mispredicts());
        EXPECT_EQ(observed.pipeline().icache().stats().misses(),
                  bare.icache().stats().misses());
        EXPECT_EQ(observed.pipeline().dcache().stats().misses(),
                  bare.dcache().stats().misses());
    }
}

/** FNV-1a over every field of every event: the stream's identity. */
struct DigestSink : TraceSink {
    std::uint64_t h = 1469598103934665603ull;
    void put(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xffu;
            h *= 1099511628211ull;
        }
    }
    void onEvent(const TraceEvent &e) override
    {
        put(e.pc);
        put(e.mem);
        put(e.target);
        put(static_cast<std::uint64_t>(e.kind));
        put(static_cast<std::uint64_t>(e.phase));
        put(e.taken ? 1 : 0);
        put(e.memSize);
        put(e.rd);
        put(e.rs1);
        put(e.rs2);
    }
    void onFinish() override {}
};

TEST(Cct, GoldenStreamDigests)
{
    // Pinned digests of the hello streams. These change ONLY when the
    // VM intentionally emits a different stream; in particular the
    // trace-visible stub addresses (isa/address_map.h stub::) must
    // stay where recorded traces put them, or every cached trace and
    // CCT frame classification silently shifts.
    const std::uint64_t kHelloInterp = 0xe7ee982cc858c8acull;
    const std::uint64_t kHelloJit = 0x77a65398f1cfb42dull;
    DigestSink interp;
    recordTiny("hello", "interp").trace->replay(interp);
    DigestSink jit;
    recordTiny("hello", "jit").trace->replay(jit);
    EXPECT_EQ(interp.h, kHelloInterp)
        << "hello/interp stream digest changed: 0x" << std::hex
        << interp.h;
    EXPECT_EQ(jit.h, kHelloJit)
        << "hello/jit stream digest changed: 0x" << std::hex << jit.h;
}

TraceEvent
ev(NKind kind, Phase phase, std::uint64_t pc = 0,
   std::uint64_t target = 0, std::uint64_t mem = 0)
{
    TraceEvent e;
    e.kind = kind;
    e.phase = phase;
    e.pc = pc;
    e.target = target;
    e.mem = mem;
    return e;
}

TEST(Cct, RecursiveCallsChainContexts)
{
    const obs::MethodMap map;
    prof::CctBuilder cct(map);
    const SimAddr fib = stub::methodStubOf(4);
    // main calls fib, fib calls fib (recursion), both return.
    cct.onEvent(ev(NKind::Call, Phase::Interpret, 0x10, fib));
    cct.onEvent(ev(NKind::IntAlu, Phase::Interpret));
    cct.onEvent(ev(NKind::IndirectCall, Phase::Interpret, 0x20, fib));
    cct.onEvent(ev(NKind::IntAlu, Phase::Interpret));
    cct.onEvent(ev(NKind::Ret, Phase::Interpret));
    cct.onEvent(ev(NKind::Ret, Phase::Interpret));
    cct.onEvent(ev(NKind::IntAlu, Phase::Interpret));

    // Root -> (method#4) -> (method#4): recursion gets its own
    // context node rather than merging with its caller.
    ASSERT_EQ(cct.nodes().size(), 3u);
    const prof::CctNode &outer = cct.nodes()[1];
    const prof::CctNode &inner = cct.nodes()[2];
    EXPECT_EQ(outer.parent, 0);
    EXPECT_EQ(inner.parent, 1);
    EXPECT_EQ(cct.nodeName(outer), "(method#4)");
    EXPECT_EQ(cct.nodeName(inner), "(method#4)");
    EXPECT_EQ(outer.calls, 1u);
    EXPECT_EQ(inner.calls, 1u);
    EXPECT_EQ(cct.maxDepthSeen(), 3u);
    EXPECT_EQ(cct.unmatchedRets(), 0u);
    EXPECT_EQ(cct.mismatchedRets(), 0u);
    // Every event landed in exactly one node.
    EXPECT_EQ(cct.totalEvents(), 7u);
    EXPECT_EQ(cct.nodes()[0].events + outer.events + inner.events, 7u);
}

TEST(Cct, UnbalancedRetsAreCountedAndIgnored)
{
    const obs::MethodMap map;
    prof::CctBuilder cct(map);
    // A Ret with only the root open (exception unwind shape).
    cct.onEvent(ev(NKind::Ret, Phase::Interpret));
    EXPECT_EQ(cct.unmatchedRets(), 1u);

    // A guest Ret while a GC frame is open: wrong kind, ignored.
    cct.onEvent(ev(NKind::Call, Phase::Gc, gc::kGcPc, 0x1));
    cct.onEvent(ev(NKind::IntAlu, Phase::Gc));
    cct.onEvent(ev(NKind::Ret, Phase::Interpret));
    EXPECT_EQ(cct.mismatchedRets(), 1u);
    // The matching Gc Ret still closes the frame.
    cct.onEvent(ev(NKind::Ret, Phase::Gc));
    cct.onEvent(ev(NKind::IntAlu, Phase::Interpret));

    EXPECT_EQ(cct.totalEvents(), 6u);
    std::uint64_t sum = 0;
    for (const prof::CctNode &n : cct.nodes())
        sum += n.events;
    EXPECT_EQ(sum, 6u);
    // Stack is back at the root: a new Gc bracket nests at depth 2.
    cct.onEvent(ev(NKind::Call, Phase::Gc, gc::kGcPc, 0x1));
    EXPECT_EQ(cct.maxDepthSeen(), 2u);
}

TEST(Cct, TranslateFramesCloseOnInstallRetOnly)
{
    const obs::MethodMap map;
    prof::CctBuilder cct(map);
    // One compilation: Call opens the frame, per-bytecode returns to
    // the dispatch loop do NOT close it, the install return does.
    cct.onEvent(ev(NKind::Call, Phase::Translate, stub::kTransDispatch,
                   stub::kTransEmit));
    cct.onEvent(ev(NKind::Ret, Phase::Translate, stub::kTransEmit));
    cct.onEvent(ev(NKind::IntAlu, Phase::Translate));
    EXPECT_EQ(cct.maxDepthSeen(), 2u);
    const prof::CctNode &trans = cct.nodes()[1];
    EXPECT_EQ(cct.nodeName(trans), "(translate)");
    EXPECT_EQ(trans.events, 2u);
    cct.onEvent(
        ev(NKind::Ret, Phase::Translate, stub::kTransInstallRet));
    cct.onEvent(ev(NKind::IntAlu, Phase::Interpret));
    EXPECT_EQ(cct.abandonedTranslations(), 0u);
    EXPECT_EQ(cct.nodes()[0].events, 2u);  // the Call + the IntAlu

    // An abandoned compilation (no install return) is closed by the
    // first event from another phase.
    cct.onEvent(ev(NKind::Call, Phase::Translate, stub::kTransDispatch,
                   stub::kTransEmit));
    cct.onEvent(ev(NKind::IntAlu, Phase::Interpret));
    EXPECT_EQ(cct.abandonedTranslations(), 1u);
    EXPECT_EQ(cct.totalEvents(), 7u);
}

TEST(Cct, DepthOverflowSuppressesPushesButConservesEvents)
{
    const obs::MethodMap map;
    prof::CctBuilder cct(map, prof::CctOptions{.maxDepth = 3});
    const SimAddr m = stub::methodStubOf(1);
    for (int i = 0; i < 6; ++i)
        cct.onEvent(ev(NKind::Call, Phase::Interpret, 0x10, m));
    cct.onEvent(ev(NKind::IntAlu, Phase::Interpret));
    for (int i = 0; i < 6; ++i)
        cct.onEvent(ev(NKind::Ret, Phase::Interpret));
    cct.onEvent(ev(NKind::IntAlu, Phase::Interpret));

    // Only maxDepth-1 frames were materialized; the rest were virtual.
    EXPECT_EQ(cct.maxDepthSeen(), 3u);
    EXPECT_EQ(cct.overflowPushes(), 4u);
    EXPECT_EQ(cct.unmatchedRets(), 0u);
    ASSERT_EQ(cct.nodes().size(), 3u);
    // The suppressed frames' events accrued to the deepest real one.
    EXPECT_EQ(cct.totalEvents(), 14u);
    std::uint64_t sum = 0;
    for (const prof::CctNode &n : cct.nodes())
        sum += n.events;
    EXPECT_EQ(sum, 14u);
    // All Rets consumed: the final IntAlu sits at the root again.
    EXPECT_EQ(cct.nodes()[0].events, 2u);
}

TEST(Cct, GoldenFoldedFixture)
{
    obs::MethodMap map;
    map.add(0x100, 0x200, "main");
    map.add(0x200, 0x300, "helper");
    prof::CctBuilder cct(map);
    // Root names itself from the first bytecode fetch; the callee
    // frame likewise from its first fetch inside the bracket.
    cct.onEvent(
        ev(NKind::Load, Phase::Interpret, seg::kInterpCode, 0, 0x110));
    cct.onEvent(ev(NKind::Call, Phase::Interpret, 0x10,
                   stub::methodStubOf(7)));
    cct.onEvent(
        ev(NKind::Load, Phase::Interpret, seg::kInterpCode, 0, 0x210));
    cct.onEvent(ev(NKind::IntAlu, Phase::Interpret));
    cct.onEvent(ev(NKind::Ret, Phase::Interpret));
    cct.onEvent(ev(NKind::IntAlu, Phase::Interpret));

    // No pipeline listener fed cycles, so values are self events.
    const std::vector<prof::FoldedLine> lines = cct.foldedLines();
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].stack, "main_[i]");
    EXPECT_EQ(lines[0].value, 3u);
    EXPECT_EQ(lines[1].stack, "main;helper_[i]");
    EXPECT_EQ(lines[1].value, 3u);

    // The same tree as difffolded text against a scaled copy.
    const std::string diff = prof::foldedDiff(lines, lines);
    EXPECT_EQ(diff, "main;helper_[i] 3 3\nmain_[i] 3 3\n");
}

TEST(Cct, ReportSetRendersStableJsonAndFoldedPrefixes)
{
    const RecordedRun rec = recordTiny("hello", "jit");
    prof::CctPipeline sink(PipelineConfig{}, rec.methods);
    rec.trace->replay(sink);

    prof::CctReportSet reports;
    reports.add("b-run", sink.cct());
    reports.add("a-run", sink.cct());
    reports.add("a-run", sink.cct());  // replace, not duplicate
    EXPECT_EQ(reports.size(), 2u);
    const std::string json = reports.toJson();
    EXPECT_NE(json.find("\"jrs-cct-v1\""), std::string::npos);
    // Runs sorted by label regardless of add order.
    EXPECT_LT(json.find("\"a-run\""), json.find("\"b-run\""));

    // Multi-run folded files prefix each stack with its run label.
    TempDir dir("jrs_prof_folded");
    const std::string path = dir.path + "/multi.folded";
    reports.writeFolded(path);
    std::ifstream f(path);
    std::string first;
    ASSERT_TRUE(std::getline(f, first));
    EXPECT_EQ(first.rfind("a-run;", 0), 0u);
}

TEST(Bench, ReportRoundTripsThroughJson)
{
    prof::BenchReport report;
    report.suite = "vm";
    prof::BenchRun run;
    run.label = "vm/compress/jit";
    run.events = 1234567;
    run.wallSeconds = 0.25;
    run.eventsPerSec = 4938268;
    run.peakRssBytes = 7654321;
    run.metrics.emplace_back("speedup \"x\"", 1.5);
    report.upsert(run);
    run.label = "vm/compress/interp";
    report.upsert(run);

    const prof::BenchReport parsed =
        prof::BenchReport::parse(report.toJson());
    EXPECT_EQ(parsed.suite, "vm");
    ASSERT_EQ(parsed.runs.size(), 2u);
    const prof::BenchRun *r = parsed.find("vm/compress/jit");
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->events, 1234567u);
    EXPECT_DOUBLE_EQ(r->wallSeconds, 0.25);
    EXPECT_DOUBLE_EQ(r->eventsPerSec, 4938268);
    EXPECT_EQ(r->peakRssBytes, 7654321u);
    EXPECT_DOUBLE_EQ(r->metric("speedup \"x\""), 1.5);
    // A second serialize/parse round trip is byte-stable.
    EXPECT_EQ(parsed.toJson(), report.toJson());
}

TEST(Bench, CompareSelfPassesAndInjectedRegressionFails)
{
    prof::BenchReport base;
    base.suite = "vm";
    for (const char *label : {"a", "b", "c"}) {
        prof::BenchRun run;
        run.label = label;
        run.events = 1000;
        run.wallSeconds = 1.0;
        run.eventsPerSec = 1000;
        base.upsert(run);
    }

    // Self-compare: zero deltas, passes at any threshold.
    const prof::CompareResult self =
        prof::compareReports(base, base, 0.0);
    EXPECT_FALSE(self.failed);
    EXPECT_EQ(self.rows.size(), 3u);
    EXPECT_EQ(self.worstDeltaPct, 0.0);

    // Injected regression: "b" is now 40% slower.
    prof::BenchReport current = base;
    prof::BenchRun slower = *current.find("b");
    slower.eventsPerSec = 600;
    current.upsert(slower);
    const prof::CompareResult cmp =
        prof::compareReports(base, current, 20.0);
    EXPECT_TRUE(cmp.failed);
    EXPECT_DOUBLE_EQ(cmp.worstDeltaPct, -40.0);
    bool found = false;
    for (const prof::CompareRow &row : cmp.rows) {
        if (row.label == "b") {
            EXPECT_TRUE(row.regressed);
            found = true;
        } else {
            EXPECT_FALSE(row.regressed);
        }
    }
    EXPECT_TRUE(found);
    EXPECT_NE(cmp.text(20.0).find("FAIL"), std::string::npos);

    // A generous threshold tolerates the same drop.
    EXPECT_FALSE(prof::compareReports(base, current, 50.0).failed);

    // Labels on only one side are reported, never failed on.
    prof::BenchReport grown = base;
    prof::BenchRun extra;
    extra.label = "d";
    extra.events = 1;
    extra.wallSeconds = 1.0;
    extra.eventsPerSec = 1;
    grown.upsert(extra);
    const prof::CompareResult g =
        prof::compareReports(base, grown, 20.0);
    EXPECT_FALSE(g.failed);
    ASSERT_EQ(g.onlyCurrent.size(), 1u);
    EXPECT_EQ(g.onlyCurrent[0], "d");
}

TEST(Bench, LoadOrEmptyRestartsForeignFiles)
{
    TempDir dir("jrs_prof_bench_load");
    const std::string path = dir.path + "/t.json";

    // Missing file: fresh report carrying the suite name.
    prof::BenchReport fresh = prof::BenchReport::loadOrEmpty(path,
                                                             "vm");
    EXPECT_EQ(fresh.suite, "vm");
    EXPECT_TRUE(fresh.runs.empty());

    // Old-schema file: the trajectory restarts rather than throwing.
    {
        std::ofstream f(path);
        f << "{\"schema\": \"jrs-bench-sweep-v1\", \"entries\": []}\n";
    }
    EXPECT_TRUE(prof::BenchReport::loadOrEmpty(path, "vm").runs
                    .empty());
    // ...but strict load() rejects it.
    EXPECT_THROW((void)prof::BenchReport::load(path), VmError);

    // Round trip through disk.
    prof::BenchRun run;
    run.label = "x";
    run.events = 42;
    run.wallSeconds = 2.0;
    run.eventsPerSec = 21;
    fresh.upsert(run);
    fresh.writeJson(path);
    const prof::BenchReport back = prof::BenchReport::loadOrEmpty(
        path, "vm");
    ASSERT_EQ(back.runs.size(), 1u);
    EXPECT_EQ(back.runs[0].events, 42u);
}

} // namespace
} // namespace jrs
