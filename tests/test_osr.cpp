/**
 * On-stack replacement: hot interpreted loops transfer live frames
 * into compiled code mid-execution — the tiered-VM mechanism whose
 * absence the counter-threshold ablation exposes.
 */
#include <gtest/gtest.h>

#include "vm_test_util.h"
#include "workloads/workload.h"

namespace jrs {
namespace {

/** One-shot method with a long loop: the OSR showcase. */
Program
loopProgram()
{
    return test::makeProgram([](MethodBuilder &m) {
        m.locals(3);
        m.iconst(0).istore(1);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(0).ifle(done);
        m.iload(1).iconst(3).imul().iload(0).iadd().istore(1);
        m.iinc(0, -1);
        m.gotoL(loop);
        m.bind(done);
        m.iload(1).ireturn();
    });
}

RunResult
runOsr(const Program &prog, std::int32_t arg,
       std::uint64_t back_edges,
       std::shared_ptr<CompilationPolicy> policy = nullptr)
{
    EngineConfig cfg;
    cfg.policy = policy ? std::move(policy)
                        : std::make_shared<NeverCompilePolicy>();
    cfg.osrBackEdgeThreshold = back_edges;
    ExecutionEngine engine(prog, cfg);
    return engine.run(arg);
}

TEST(Osr, HotLoopTransfersAndMatchesInterpreter)
{
    const Program p1 = loopProgram();
    const RunResult interp = test::runProgram(
        p1, 5000, std::make_shared<NeverCompilePolicy>());
    const Program p2 = loopProgram();
    const RunResult osr = runOsr(p2, 5000, 50);
    ASSERT_TRUE(osr.completed);
    EXPECT_EQ(osr.exitValue, interp.exitValue);
    EXPECT_EQ(osr.osrTransitions, 1u);
    // The bulk of the loop ran natively.
    EXPECT_GT(osr.inPhase(Phase::NativeExec),
              osr.inPhase(Phase::Interpret));
    EXPECT_LT(osr.totalEvents, interp.totalEvents);
}

TEST(Osr, ColdLoopStaysInterpreted)
{
    const Program prog = loopProgram();
    const RunResult r = runOsr(prog, 10, 50);  // 10 < 50 back edges
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.osrTransitions, 0u);
    EXPECT_EQ(r.inPhase(Phase::NativeExec), 0u);
}

TEST(Osr, MidLoopStateIsTransferredExactly)
{
    // The checksum depends on every iteration; a single lost or
    // duplicated iteration (or a mis-mapped local) changes it.
    for (std::uint64_t threshold : {1u, 7u, 113u}) {
        const Program p1 = loopProgram();
        const std::int32_t expected =
            test::runProgram(p1, 3000,
                             std::make_shared<NeverCompilePolicy>())
                .exitValue;
        const Program p2 = loopProgram();
        EXPECT_EQ(runOsr(p2, 3000, threshold).exitValue, expected)
            << "threshold=" << threshold;
    }
}

TEST(Osr, DeepOperandStackAtTransferPoint)
{
    // Loop with a value parked on the operand stack across the back
    // edge is impossible in our verifier (depth at merge must match),
    // but locals beyond the register file must still transfer.
    const Program prog = test::makeProgram([](MethodBuilder &m) {
        m.locals(18);
        for (std::uint8_t i = 2; i <= 17; ++i)
            m.iconst(i).istore(i);
        m.iconst(0).istore(1);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(0).ifle(done);
        // touch a spilled local every iteration
        m.iload(1).iload(17).iadd().istore(1);
        m.iinc(17, 1);
        m.iinc(0, -1);
        m.gotoL(loop);
        m.bind(done);
        m.iload(1).iload(15).iadd().ireturn();
    });
    const RunResult interp = test::runProgram(
        test::makeProgram([](MethodBuilder &m) {
            m.locals(18);
            for (std::uint8_t i = 2; i <= 17; ++i)
                m.iconst(i).istore(i);
            m.iconst(0).istore(1);
            Label loop = m.newLabel(), done = m.newLabel();
            m.bind(loop);
            m.iload(0).ifle(done);
            m.iload(1).iload(17).iadd().istore(1);
            m.iinc(17, 1);
            m.iinc(0, -1);
            m.gotoL(loop);
            m.bind(done);
            m.iload(1).iload(15).iadd().ireturn();
        }),
        500, std::make_shared<NeverCompilePolicy>());
    const RunResult osr = runOsr(prog, 500, 20);
    ASSERT_TRUE(osr.completed);
    EXPECT_EQ(osr.exitValue, interp.exitValue);
    EXPECT_EQ(osr.osrTransitions, 1u);
}

TEST(Osr, SynchronizedMethodKeepsItsMonitor)
{
    const Program prog = test::makeProgramFull([](ProgramBuilder &pb) {
        ClassBuilder &c = pb.cls("C");
        c.field("v");
        {
            MethodBuilder &m =
                c.virtualMethod("spin", {VType::Int}, VType::Int);
            m.synchronized_();
            m.locals(3);
            Label loop = m.newLabel(), done = m.newLabel();
            m.bind(loop);
            m.iload(1).ifle(done);
            m.aload(0)
                .aload(0).getFieldI("C.v").iconst(1).iadd()
                .putFieldI("C.v");
            m.iinc(1, -1);
            m.gotoL(loop);
            m.bind(done);
            m.aload(0).getFieldI("C.v").ireturn();
        }
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.locals(2);
        m.newObject("C").astore(1);
        m.aload(1).iload(0).invokeVirtual("C.spin").ireturn();
    });
    const RunResult r = runOsr(prog, 400, 30);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.exitValue, 400);
    EXPECT_EQ(r.osrTransitions, 1u);
    EXPECT_EQ(r.lockStats.enterOps, r.lockStats.exitOps);
}

class OsrWorkloads : public ::testing::TestWithParam<const char *> {};

TEST_P(OsrWorkloads, ChecksumsUnchangedUnderTieredExecution)
{
    const WorkloadInfo *w = findWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    const Program p1 = w->build();
    const std::int32_t expected =
        test::runProgram(p1, w->tinyArg,
                         std::make_shared<NeverCompilePolicy>())
            .exitValue;
    // Tiered: counter policy for invocations + OSR for loops.
    const Program p2 = w->build();
    EngineConfig cfg;
    cfg.policy = std::make_shared<CounterPolicy>(4);
    cfg.osrBackEdgeThreshold = 64;
    ExecutionEngine engine(p2, cfg);
    const RunResult r = engine.run(w->tinyArg);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.exitValue, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, OsrWorkloads,
    ::testing::Values("compress", "jess", "db", "javac", "mpeg",
                      "mtrt", "jack", "hello"),
    [](const auto &info) { return std::string(info.param); });

} // namespace
} // namespace jrs
