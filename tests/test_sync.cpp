#include <gtest/gtest.h>

#include <memory>

#include "isa/emitter.h"
#include "vm/runtime/heap.h"
#include "vm/sync/monitor_cache.h"
#include "vm/sync/thin_lock.h"
#include "vm_test_util.h"

namespace jrs {
namespace {

/** Fixture providing a heap, an emitter and one lock of each kind. */
class SyncFixture : public ::testing::TestWithParam<SyncKind> {
  protected:
    SyncFixture() : heap_(1 << 20), emitter_(nullptr) {}

    std::unique_ptr<SyncSystem> make() {
        switch (GetParam()) {
          case SyncKind::MonitorCache:
            return std::make_unique<MonitorCacheSync>(heap_, emitter_);
          case SyncKind::ThinLock:
            return std::make_unique<ThinLockSync>(heap_, emitter_);
          case SyncKind::OneBitLock:
            return std::make_unique<OneBitLockSync>(heap_, emitter_);
        }
        return nullptr;
    }

    SimAddr newObj() { return heap_.allocObject(0, 2); }

    Heap heap_;
    TraceEmitter emitter_;
};

TEST_P(SyncFixture, UncontendedEnterExitIsCaseA)
{
    auto sync = make();
    const SimAddr o = newObj();
    EXPECT_TRUE(sync->enter(1, o));
    EXPECT_TRUE(sync->owns(1, o));
    sync->exit(1, o);
    EXPECT_FALSE(sync->owns(1, o));
    EXPECT_EQ(sync->stats().caseCount[0], 1u);
    EXPECT_EQ(sync->stats().enterOps, 1u);
    EXPECT_EQ(sync->stats().exitOps, 1u);
}

TEST_P(SyncFixture, ReacquireAfterReleaseIsCaseAAgain)
{
    auto sync = make();
    const SimAddr o = newObj();
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(sync->enter(2, o));
        sync->exit(2, o);
    }
    EXPECT_EQ(sync->stats().caseCount[0], 5u);
    EXPECT_EQ(sync->stats().caseCount[1], 0u);
}

TEST_P(SyncFixture, RecursiveLockIsCaseB)
{
    auto sync = make();
    const SimAddr o = newObj();
    ASSERT_TRUE(sync->enter(1, o));
    ASSERT_TRUE(sync->enter(1, o));
    ASSERT_TRUE(sync->enter(1, o));
    EXPECT_TRUE(sync->owns(1, o));
    EXPECT_EQ(sync->stats().caseCount[1], 2u);
    sync->exit(1, o);
    EXPECT_TRUE(sync->owns(1, o));  // still held, depth 2
    sync->exit(1, o);
    sync->exit(1, o);
    EXPECT_FALSE(sync->owns(1, o));
}

TEST_P(SyncFixture, ContendedEnterBlocksAndIsCaseD)
{
    auto sync = make();
    const SimAddr o = newObj();
    ASSERT_TRUE(sync->enter(1, o));
    EXPECT_FALSE(sync->enter(2, o));
    EXPECT_EQ(sync->stats().caseCount[3], 1u);
    // Blocked retries are not double-counted.
    EXPECT_FALSE(sync->enter(2, o));
    EXPECT_FALSE(sync->enter(2, o));
    EXPECT_EQ(sync->stats().caseCount[3], 1u);
    sync->exit(1, o);
    EXPECT_TRUE(sync->enter(2, o));
    EXPECT_TRUE(sync->owns(2, o));
}

TEST_P(SyncFixture, ExitByNonOwnerThrows)
{
    auto sync = make();
    const SimAddr o = newObj();
    ASSERT_TRUE(sync->enter(1, o));
    EXPECT_THROW(sync->exit(2, o), VmError);
}

TEST_P(SyncFixture, DistinctObjectsAreIndependent)
{
    auto sync = make();
    const SimAddr a = newObj();
    const SimAddr b = newObj();
    ASSERT_TRUE(sync->enter(1, a));
    EXPECT_TRUE(sync->enter(2, b));
    EXPECT_TRUE(sync->owns(1, a));
    EXPECT_TRUE(sync->owns(2, b));
    EXPECT_FALSE(sync->owns(1, b));
    sync->exit(1, a);
    sync->exit(2, b);
}

TEST_P(SyncFixture, CostsAccumulate)
{
    auto sync = make();
    const SimAddr o = newObj();
    ASSERT_TRUE(sync->enter(1, o));
    const std::uint64_t c1 = sync->stats().simCycles;
    EXPECT_GT(c1, 0u);
    sync->exit(1, o);
    EXPECT_GT(sync->stats().simCycles, c1);
}

INSTANTIATE_TEST_SUITE_P(AllSyncKinds, SyncFixture,
                         ::testing::Values(SyncKind::MonitorCache,
                                           SyncKind::ThinLock,
                                           SyncKind::OneBitLock),
                         [](const auto &info) {
                             return syncKindName(info.param);
                         });

TEST(ThinLock, PackUnpack)
{
    const std::uint32_t w = ThinLockSync::pack(5, 3);
    EXPECT_FALSE(ThinLockSync::isFat(w));
    EXPECT_EQ(ThinLockSync::ownerOf(w), 6u);  // tid + 1
    EXPECT_EQ(ThinLockSync::depthOf(w), 3u);
}

TEST(ThinLock, CaseAIsCheaperThanMonitorCache)
{
    Heap heap(1 << 20);
    TraceEmitter em(nullptr);
    ThinLockSync thin(heap, em);
    MonitorCacheSync fat(heap, em);
    const SimAddr o1 = heap.allocObject(0, 0);
    const SimAddr o2 = heap.allocObject(0, 0);
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(thin.enter(1, o1));
        thin.exit(1, o1);
        ASSERT_TRUE(fat.enter(1, o2));
        fat.exit(1, o2);
    }
    // The paper's ~2x speedup: thin must be at least 1.8x cheaper.
    EXPECT_GT(static_cast<double>(fat.stats().simCycles),
              1.8 * static_cast<double>(thin.stats().simCycles));
}

TEST(ThinLock, DeepRecursionInflates)
{
    Heap heap(1 << 20);
    TraceEmitter em(nullptr);
    ThinLockSync thin(heap, em);
    const SimAddr o = heap.allocObject(0, 0);
    for (int i = 0; i < 300; ++i)
        ASSERT_TRUE(thin.enter(1, o));
    EXPECT_GE(thin.stats().inflations, 1u);
    EXPECT_GE(thin.stats().caseCount[2], 1u);  // case (c)
    EXPECT_TRUE(ThinLockSync::isFat(heap.lockword(o)));
    for (int i = 0; i < 300; ++i)
        thin.exit(1, o);
    EXPECT_FALSE(thin.owns(1, o));
}

TEST(ThinLock, ContentionInflatesPreservingOwner)
{
    Heap heap(1 << 20);
    TraceEmitter em(nullptr);
    ThinLockSync thin(heap, em);
    const SimAddr o = heap.allocObject(0, 0);
    ASSERT_TRUE(thin.enter(1, o));
    EXPECT_FALSE(thin.enter(2, o));
    EXPECT_TRUE(ThinLockSync::isFat(heap.lockword(o)));
    EXPECT_TRUE(thin.owns(1, o));  // inflation kept ownership
    thin.exit(1, o);
    EXPECT_TRUE(thin.enter(2, o));
    thin.exit(2, o);
}

TEST(OneBitLock, SecondAccessInflatesEvenWhenRecursive)
{
    Heap heap(1 << 20);
    TraceEmitter em(nullptr);
    OneBitLockSync ob(heap, em);
    const SimAddr o = heap.allocObject(0, 0);
    ASSERT_TRUE(ob.enter(1, o));
    EXPECT_EQ(ob.fatMonitors(), 0u);
    ASSERT_TRUE(ob.enter(1, o));  // recursion forces inflation
    EXPECT_EQ(ob.fatMonitors(), 1u);
    EXPECT_EQ(ob.stats().caseCount[1], 1u);  // still classified (b)
    ob.exit(1, o);
    ob.exit(1, o);
    EXPECT_FALSE(ob.owns(1, o));
}

TEST(MonitorCache, TracksLiveMonitors)
{
    Heap heap(1 << 20);
    TraceEmitter em(nullptr);
    MonitorCacheSync mc(heap, em);
    const SimAddr a = heap.allocObject(0, 0);
    const SimAddr b = heap.allocObject(0, 0);
    ASSERT_TRUE(mc.enter(1, a));
    ASSERT_TRUE(mc.enter(1, b));
    EXPECT_EQ(mc.liveMonitors(), 2u);
    mc.exit(1, a);
    mc.exit(1, b);
    EXPECT_EQ(mc.liveMonitors(), 2u);  // records persist (space cost)
}

TEST(MonitorCache, EmitsRuntimeTraceWhenSinkAttached)
{
    Heap heap(1 << 20);
    RecordingSink rec;
    TraceEmitter em(&rec);
    MonitorCacheSync mc(heap, em);
    const SimAddr o = heap.allocObject(0, 0);
    ASSERT_TRUE(mc.enter(1, o));
    mc.exit(1, o);
    ASSERT_FALSE(rec.events().empty());
    for (const TraceEvent &ev : rec.events())
        EXPECT_EQ(ev.phase, Phase::Runtime);
}

TEST(SyncStats, CaseDistributionIsImplementationIndependent)
{
    // The (a)-(d) classification is a property of the access pattern;
    // all three implementations must agree on it.
    auto drive = [](SyncSystem &s, Heap &heap) {
        const SimAddr o = heap.allocObject(0, 0);
        const SimAddr p = heap.allocObject(0, 0);
        EXPECT_TRUE(s.enter(1, o));   // a
        EXPECT_TRUE(s.enter(1, o));   // b
        EXPECT_TRUE(s.enter(2, p));   // a
        EXPECT_FALSE(s.enter(2, o));  // d
        s.exit(1, o);
        s.exit(1, o);
        EXPECT_TRUE(s.enter(2, o));   // a (lock was free again)
    };
    Heap h1(1 << 20), h2(1 << 20), h3(1 << 20);
    TraceEmitter em(nullptr);
    MonitorCacheSync mc(h1, em);
    ThinLockSync tl(h2, em);
    OneBitLockSync ob(h3, em);
    drive(mc, h1);
    drive(tl, h2);
    drive(ob, h3);
    for (std::size_t c = 0; c < kNumLockCases; ++c) {
        EXPECT_EQ(mc.stats().caseCount[c], tl.stats().caseCount[c])
            << "case " << c;
        EXPECT_EQ(mc.stats().caseCount[c], ob.stats().caseCount[c])
            << "case " << c;
    }
}

TEST(EngineSync, SynchronizedMethodAcquiresAndReleases)
{
    const Program prog = test::makeProgramFull([](ProgramBuilder &pb) {
        ClassBuilder &c = pb.cls("C");
        c.field("v");
        {
            MethodBuilder &m =
                c.virtualMethod("bump", {}, VType::Int);
            m.synchronized_();
            m.aload(0)
                .aload(0).getFieldI("C.v").iconst(1).iadd()
                .putFieldI("C.v");
            m.aload(0).getFieldI("C.v").ireturn();
        }
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.locals(2);
        m.newObject("C").astore(1);
        m.aload(1).invokeVirtual("C.bump").pop();
        m.aload(1).invokeVirtual("C.bump").ireturn();
    });
    const RunResult r = test::runProgram(prog, 0);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.exitValue, 2);
    EXPECT_EQ(r.lockStats.enterOps, 2u);
    EXPECT_EQ(r.lockStats.exitOps, 2u);
    EXPECT_EQ(r.lockStats.caseCount[0], 2u);
}

TEST(EngineSync, MonitorEnterExitBytecodes)
{
    const std::int32_t v = test::bothModes([](MethodBuilder &m) {
        m.locals(2);
        m.iconst(4).newArray(ArrayKind::Int).astore(1);
        m.aload(1).monitorEnter();
        m.aload(1).iconst(0).iconst(9).iastore();
        m.aload(1).monitorExit();
        m.aload(1).iconst(0).iaload().ireturn();
    });
    EXPECT_EQ(v, 9);
}

} // namespace
} // namespace jrs
