/**
 * @file
 * jrs::prof sampling-profiler contract tests (prof/sampler.h +
 * prof/frame_tracker.h):
 *
 *  - Determinism: a fixed seed reproduces the sampled profile
 *    bit-for-bit; changing the seed moves the sample points.
 *  - Non-perturbation: a pipeline observed by a SamplingProfiler is
 *    bit-identical to a bare one, the recorded stream digests stay at
 *    their pinned golden values, and an exact CCT profiler sharing
 *    the replay fan is unperturbed.
 *  - Shared frame discipline: the FrameTracker behind both profilers
 *    reproduces the Call/Ret shapes the exact profiler pins down
 *    (recursion, unmatched/mismatched Rets, Translate close rules,
 *    depth overflow).
 *  - Ground-truth agreement: a period-1 event-clock sampler
 *    reproduces the exact profiler's folded output exactly, and
 *    calibration error shrinks as the period does on a synthetic
 *    two-hot-method stream.
 *  - jrs-sample-v1 documents parse back through obs::JsonParser;
 *    report sets sort/replace like the CCT ones.
 *  - Calibration metrics (top-N overlap, rank agreement) on
 *    hand-built profiles; jittered-gap bounds.
 *  - ObsCli/GcCli error paths exit 2 with a usage message.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "arch/pipeline/pipeline.h"
#include "harness/experiment.h"
#include "isa/address_map.h"
#include "isa/trace_buffer.h"
#include "obs/attribution.h"
#include "obs/cli.h"
#include "obs/json.h"
#include "prof/cct.h"
#include "prof/frame_tracker.h"
#include "prof/sampler.h"
#include "support/random.h"
#include "vm/engine/policy.h"
#include "workloads/workload.h"

namespace jrs {
namespace {

/** Unique-per-test temp dir, removed at scope exit. */
struct TempDir {
    explicit TempDir(const std::string &leaf)
        : path(std::string(::testing::TempDir()) + leaf)
    {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }
    std::string path;
};

std::shared_ptr<CompilationPolicy>
policyFor(const std::string &mode)
{
    if (mode == "interp")
        return std::make_shared<NeverCompilePolicy>();
    if (mode == "jit")
        return std::make_shared<AlwaysCompilePolicy>();
    return std::make_shared<CounterPolicy>(8);
}

/** Record one tiny run; every test replays offline from here. */
RecordedRun
recordTiny(const char *workload, const std::string &mode)
{
    const WorkloadInfo *w = findWorkload(workload);
    EXPECT_NE(w, nullptr) << workload;
    RunSpec s;
    s.workload = w;
    s.arg = w->tinyArg;
    s.policy = policyFor(mode);
    return recordWorkload(s);
}

/** FNV-1a over every field of every event: the stream's identity. */
struct DigestSink : TraceSink {
    std::uint64_t h = 1469598103934665603ull;
    void put(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xffu;
            h *= 1099511628211ull;
        }
    }
    void onEvent(const TraceEvent &e) override
    {
        put(e.pc);
        put(e.mem);
        put(e.target);
        put(static_cast<std::uint64_t>(e.kind));
        put(static_cast<std::uint64_t>(e.phase));
        put(e.taken ? 1 : 0);
        put(e.memSize);
        put(e.rd);
        put(e.rs1);
        put(e.rs2);
    }
    void onFinish() override {}
};

/** Forward one replay to two sinks (sampler + exact sharing a fan). */
struct FanSink : TraceSink {
    TraceSink *a = nullptr;
    TraceSink *b = nullptr;
    void onEvent(const TraceEvent &e) override
    {
        a->onEvent(e);
        b->onEvent(e);
    }
    void onFinish() override
    {
        a->onFinish();
        b->onFinish();
    }
};

TraceEvent
ev(NKind kind, Phase phase, std::uint64_t pc = 0,
   std::uint64_t target = 0, std::uint64_t mem = 0)
{
    TraceEvent e;
    e.kind = kind;
    e.phase = phase;
    e.pc = pc;
    e.target = target;
    e.mem = mem;
    return e;
}

TEST(Sampler, FixedSeedIsReproducible)
{
    const RecordedRun rec = recordTiny("hello", "jit");
    ASSERT_NE(rec.methods, nullptr);
    prof::SampleOptions opt;
    opt.period = 512;
    opt.seed = 7;
    prof::SamplePipeline one(PipelineConfig{}, rec.methods, opt);
    rec.trace->replay(one);
    prof::SamplePipeline two(PipelineConfig{}, rec.methods, opt);
    rec.trace->replay(two);

    EXPECT_GT(one.sampler().samples(), 0u);
    EXPECT_EQ(one.sampler().samples(), two.sampler().samples());
    EXPECT_EQ(one.sampler().runJson("r"), two.sampler().runJson("r"));

    // A different seed moves the jittered sample points: same clock,
    // different sample placement (with overwhelming likelihood a
    // different document; assert the deterministic part only).
    opt.seed = 8;
    prof::SamplePipeline three(PipelineConfig{}, rec.methods, opt);
    rec.trace->replay(three);
    EXPECT_EQ(three.sampler().clockTotal(),
              one.sampler().clockTotal());
    EXPECT_NE(three.sampler().runJson("r"),
              one.sampler().runJson("r"));
}

TEST(Sampler, ObserverDoesNotPerturbPipeline)
{
    // Pinned digests of the hello streams (same constants as
    // tests/test_prof.cpp): the sampled run must be replaying the
    // exact same stream, not a perturbed one.
    const std::uint64_t kHelloInterp = 0xe7ee982cc858c8acull;
    const std::uint64_t kHelloJit = 0x77a65398f1cfb42dull;
    for (const auto &[mode, digest] :
         {std::pair<const char *, std::uint64_t>{"interp",
                                                 kHelloInterp},
          std::pair<const char *, std::uint64_t>{"jit", kHelloJit}}) {
        SCOPED_TRACE(mode);
        const RecordedRun rec = recordTiny("hello", mode);
        DigestSink d;
        rec.trace->replay(d);
        EXPECT_EQ(d.h, digest);

        PipelineSim bare((PipelineConfig()));
        rec.trace->replay(bare);
        prof::SamplePipeline observed(PipelineConfig{}, rec.methods);
        rec.trace->replay(observed);

        // Sampler on == sampler off, bit for bit.
        EXPECT_EQ(observed.pipeline().cycles(), bare.cycles());
        EXPECT_EQ(observed.pipeline().instructions(),
                  bare.instructions());
        EXPECT_EQ(observed.pipeline().mispredicts(),
                  bare.mispredicts());
        EXPECT_EQ(observed.pipeline().icache().stats().misses(),
                  bare.icache().stats().misses());
        EXPECT_EQ(observed.pipeline().dcache().stats().misses(),
                  bare.dcache().stats().misses());
        // The sampler's cycle clock saw every retired cycle.
        EXPECT_EQ(observed.sampler().clockTotal(), bare.cycles());
    }
}

TEST(Sampler, ExactProfilerUnperturbedWhenSharingReplay)
{
    const RecordedRun rec = recordTiny("compress", "jit");
    ASSERT_NE(rec.methods, nullptr);

    // Exact profiler alone...
    prof::CctPipeline solo(PipelineConfig{}, rec.methods);
    rec.trace->replay(solo);

    // ...and side by side with a sampler on one replay fan.
    prof::CctPipeline exact(PipelineConfig{}, rec.methods);
    prof::SamplePipeline sampled(PipelineConfig{}, rec.methods);
    FanSink fan;
    fan.a = &sampled;
    fan.b = &exact;
    rec.trace->replay(fan);

    EXPECT_EQ(exact.cct().totalCycles(), solo.cct().totalCycles());
    EXPECT_EQ(exact.cct().totalEvents(), solo.cct().totalEvents());
    EXPECT_EQ(exact.cct().runJson("r"), solo.cct().runJson("r"));
    EXPECT_EQ(sampled.pipeline().cycles(), solo.pipeline().cycles());
}

TEST(FrameTracker, MirrorsCallRetDiscipline)
{
    const obs::MethodMap map;
    prof::FrameTracker t(&map);
    const SimAddr fib = stub::methodStubOf(4);

    // Recursion stacks two frames of the same method.
    t.onEvent(ev(NKind::Call, Phase::Interpret, 0x10, fib));
    t.onEvent(ev(NKind::IndirectCall, Phase::Interpret, 0x20, fib));
    EXPECT_EQ(t.stack().size(), 3u);
    EXPECT_EQ(t.frameName(t.stack().back()), "(method#4)");
    EXPECT_EQ(t.maxDepthSeen(), 3u);

    // An interp Ret closes a Method frame; with only the root left,
    // further Rets are counted as unmatched and ignored.
    t.onEvent(ev(NKind::Ret, Phase::Interpret));
    t.onEvent(ev(NKind::Ret, Phase::Interpret));
    EXPECT_EQ(t.stack().size(), 1u);
    t.onEvent(ev(NKind::Ret, Phase::Interpret));
    EXPECT_EQ(t.unmatchedRets(), 1u);

    // A guest Ret under an open Runtime bracket is a kind mismatch.
    t.onEvent(ev(NKind::Call, Phase::Runtime, stub::kAllocPc, 0x1));
    EXPECT_EQ(t.frameName(t.stack().back()), "(alloc)");
    t.onEvent(ev(NKind::Ret, Phase::Interpret));
    EXPECT_EQ(t.mismatchedRets(), 1u);
    EXPECT_EQ(t.stack().size(), 2u);
    t.onEvent(ev(NKind::Ret, Phase::Runtime));
    EXPECT_EQ(t.stack().size(), 1u);
}

TEST(FrameTracker, TranslateCloseAndOverflowRules)
{
    const obs::MethodMap map;
    prof::FrameTracker t(&map, prof::FrameTrackerOptions{3});

    // Translate frames ignore per-bytecode dispatch returns and close
    // only on the install return...
    t.onEvent(ev(NKind::Call, Phase::Translate, stub::kTransDispatch,
                 stub::kTransEmit));
    t.onEvent(ev(NKind::Ret, Phase::Translate, stub::kTransEmit));
    EXPECT_EQ(t.stack().size(), 2u);
    t.onEvent(
        ev(NKind::Ret, Phase::Translate, stub::kTransInstallRet));
    EXPECT_EQ(t.stack().size(), 1u);
    EXPECT_EQ(t.abandonedTranslations(), 0u);

    // ...or are abandoned at the first event from another phase, with
    // begin() reporting the close so consumers can mirror it.
    t.onEvent(ev(NKind::Call, Phase::Translate, stub::kTransDispatch,
                 stub::kTransEmit));
    const prof::FrameTracker::Step step =
        t.begin(ev(NKind::IntAlu, Phase::Interpret));
    EXPECT_TRUE(step.closedTranslate);
    t.finish(ev(NKind::IntAlu, Phase::Interpret));
    EXPECT_EQ(t.abandonedTranslations(), 1u);
    EXPECT_EQ(t.stack().size(), 1u);

    // Depth overflow: pushes beyond maxDepth are virtual, and their
    // Rets unwind the virtual counter before touching real frames.
    const SimAddr m = stub::methodStubOf(1);
    for (int i = 0; i < 6; ++i)
        t.onEvent(ev(NKind::Call, Phase::Interpret, 0x10, m));
    EXPECT_EQ(t.stack().size(), 3u);
    EXPECT_EQ(t.overflowPushes(), 4u);
    for (int i = 0; i < 6; ++i)
        t.onEvent(ev(NKind::Ret, Phase::Interpret));
    EXPECT_EQ(t.stack().size(), 1u);
    EXPECT_EQ(t.unmatchedRets(), 0u);
}

TEST(Sampler, PeriodOneEventClockMatchesExactCct)
{
    for (const char *mode : {"interp", "jit"}) {
        SCOPED_TRACE(mode);
        const RecordedRun rec = recordTiny("hello", mode);
        ASSERT_NE(rec.methods, nullptr);

        // Exact pass with no pipeline: folded values are self events.
        prof::CctBuilder exact(*rec.methods);
        rec.trace->replay(exact);

        // A period-1 event-clock sampler samples every event at its
        // attribution point, so it must reproduce the exact
        // per-context event counts — the strongest possible check
        // that both profilers share one frame discipline.
        prof::SampleOptions opt;
        opt.period = 1;
        prof::SamplingProfiler sampled(*rec.methods, opt);
        rec.trace->replay(sampled);

        EXPECT_EQ(sampled.samples(), exact.totalEvents());
        const std::vector<prof::FoldedLine> a = exact.foldedLines();
        const std::vector<prof::FoldedLine> b = sampled.foldedLines();
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].stack, b[i].stack) << i;
            EXPECT_EQ(a[i].value, b[i].value) << i;
        }
    }
}

/** Two hot methods with a fixed 8:4 self-event split (plus the root's
    Call events), repeated @p iters times. */
void
feedTwoHotMethods(TraceSink &sink, int iters)
{
    const SimAddr m1 = stub::methodStubOf(1);
    const SimAddr m2 = stub::methodStubOf(2);
    for (int i = 0; i < iters; ++i) {
        sink.onEvent(ev(NKind::Call, Phase::Interpret, 0x10, m1));
        for (int k = 0; k < 7; ++k)
            sink.onEvent(ev(NKind::IntAlu, Phase::Interpret));
        sink.onEvent(ev(NKind::Ret, Phase::Interpret));
        sink.onEvent(ev(NKind::Call, Phase::Interpret, 0x20, m2));
        for (int k = 0; k < 3; ++k)
            sink.onEvent(ev(NKind::IntAlu, Phase::Interpret));
        sink.onEvent(ev(NKind::Ret, Phase::Interpret));
    }
    sink.onFinish();
}

TEST(Sampler, CalibrationErrorShrinksWithPeriod)
{
    const obs::MethodMap map;
    prof::CctBuilder exact(map);
    feedTwoHotMethods(exact, 3000);

    double lastErr = -1;
    for (const std::uint64_t period : {1024ull, 64ull, 4ull}) {
        SCOPED_TRACE(period);
        prof::SampleOptions opt;
        opt.period = period;
        prof::SamplingProfiler sampled(map, opt);
        feedTwoHotMethods(sampled, 3000);

        const prof::CalibrationReport rep =
            prof::calibrate(exact, sampled);
        EXPECT_EQ(rep.value, "events");
        EXPECT_EQ(rep.samples, sampled.samples());
        ASSERT_FALSE(rep.rows.empty());
        // Rows sorted by exact share: (method#1) is the hottest.
        EXPECT_EQ(rep.rows[0].name, "(method#1)");
        EXPECT_NEAR(rep.rows[0].exactShare, 8.0 / 14.0, 1e-9);
        // Denser sampling is never less accurate on this stream, and
        // both orderings agree at every period.
        if (lastErr >= 0) {
            EXPECT_LE(rep.meanAbsErrPct, lastErr);
        }
        lastErr = rep.meanAbsErrPct;
        EXPECT_EQ(rep.topOverlap, 1.0);
        EXPECT_EQ(rep.rankAgreement, 1.0);
    }
    // At period 4 the estimate is tight in absolute terms.
    EXPECT_LT(lastErr, 1.0);
}

TEST(Sampler, JsonRoundTripsThroughParser)
{
    const RecordedRun rec = recordTiny("hello", "jit");
    prof::SamplePipeline sp(PipelineConfig{}, rec.methods);
    rec.trace->replay(sp);

    prof::SampleReportSet reports;
    reports.add("hello/jit", sp.sampler());
    const obs::JsonParser::Value doc =
        obs::JsonParser(reports.toJson(), "jrs-sample-v1").parse();
    ASSERT_NE(doc.field("schema"), nullptr);
    EXPECT_EQ(doc.field("schema")->str, "jrs-sample-v1");
    const obs::JsonParser::Value *runs = doc.field("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->items.size(), 1u);
    const obs::JsonParser::Value &run = runs->items[0];
    EXPECT_EQ(run.field("label")->str, "hello/jit");
    EXPECT_EQ(run.field("clock")->str, "cycles");
    EXPECT_EQ(static_cast<std::uint64_t>(run.field("samples")->num),
              sp.sampler().samples());
    EXPECT_EQ(static_cast<std::uint64_t>(
                  run.field("clock_total")->num),
              sp.pipeline().cycles());

    // Per-node samples partition the total.
    const obs::JsonParser::Value *nodes = run.field("nodes");
    ASSERT_NE(nodes, nullptr);
    std::uint64_t sum = 0;
    for (const obs::JsonParser::Value &n : nodes->items)
        sum += static_cast<std::uint64_t>(n.field("samples")->num);
    EXPECT_EQ(sum, sp.sampler().samples());
}

TEST(Sampler, ReportSetSortsAndReplacesAndPrefixesFolded)
{
    const RecordedRun rec = recordTiny("hello", "jit");
    prof::SamplePipeline sp(PipelineConfig{}, rec.methods);
    rec.trace->replay(sp);

    prof::SampleReportSet reports;
    reports.add("b-run", sp.sampler());
    reports.add("a-run", sp.sampler());
    reports.add("a-run", sp.sampler());  // replace, not duplicate
    EXPECT_EQ(reports.size(), 2u);
    const std::string json = reports.toJson();
    EXPECT_NE(json.find("\"jrs-sample-v1\""), std::string::npos);
    EXPECT_LT(json.find("\"a-run\""), json.find("\"b-run\""));

    TempDir dir("jrs_sample_folded");
    const std::string path = dir.path + "/multi.folded";
    reports.writeFolded(path);
    std::ifstream f(path);
    std::string first;
    ASSERT_TRUE(std::getline(f, first));
    EXPECT_EQ(first.rfind("a-run;", 0), 0u);
}

TEST(Calibration, TopShareOverlapHandBuilt)
{
    using Shares = std::vector<std::pair<std::string, double>>;
    const Shares exact = {{"a", 0.5}, {"b", 0.3}, {"c", 0.2}};
    const Shares sampled = {{"a", 0.4}, {"c", 0.35}, {"b", 0.25}};

    // Top-2 hot sets: {a, b} vs {a, c} — half shared.
    EXPECT_DOUBLE_EQ(prof::topShareOverlap(exact, sampled, 2), 0.5);
    // Top-3 covers everything on both sides.
    EXPECT_DOUBLE_EQ(prof::topShareOverlap(exact, sampled, 3), 1.0);
    // n clamps to the smaller profile.
    const Shares one = {{"a", 1.0}};
    EXPECT_DOUBLE_EQ(prof::topShareOverlap(exact, one, 10), 1.0);
    // Vacuous cases agree.
    EXPECT_DOUBLE_EQ(prof::topShareOverlap({}, sampled, 5), 1.0);
    EXPECT_DOUBLE_EQ(prof::topShareOverlap(exact, sampled, 0), 1.0);
    // Ties break by name, deterministically: top-1 of {x:0.5, y:0.5}
    // is x on both sides.
    const Shares tied = {{"y", 0.5}, {"x", 0.5}};
    EXPECT_DOUBLE_EQ(prof::topShareOverlap(tied, tied, 1), 1.0);
}

TEST(Calibration, ShareRankAgreementHandBuilt)
{
    using Shares = std::vector<std::pair<std::string, double>>;
    const Shares exact = {{"a", 0.5}, {"b", 0.3}, {"c", 0.2}};

    // Same ordering: all 3 pairs concordant.
    const Shares same = {{"a", 0.6}, {"b", 0.25}, {"c", 0.15}};
    EXPECT_DOUBLE_EQ(prof::shareRankAgreement(exact, same), 1.0);
    // One swapped pair (b vs c): 2 of 3 pairs concordant.
    const Shares swapped = {{"a", 0.6}, {"b", 0.15}, {"c", 0.25}};
    EXPECT_NEAR(prof::shareRankAgreement(exact, swapped), 2.0 / 3.0,
                1e-12);
    // Fully reversed: nothing concordant.
    const Shares reversed = {{"a", 0.1}, {"b", 0.3}, {"c", 0.6}};
    EXPECT_DOUBLE_EQ(prof::shareRankAgreement(exact, reversed), 0.0);
    // Only names present in both profiles are ranked.
    const Shares partial = {{"a", 0.2}, {"z", 0.8}};
    EXPECT_DOUBLE_EQ(prof::shareRankAgreement(exact, partial), 1.0);
    // Fewer than two common names agree vacuously.
    EXPECT_DOUBLE_EQ(prof::shareRankAgreement(exact, {}), 1.0);
}

TEST(Sampler, JitteredGapStaysInBounds)
{
    XorShift64 prng(42);
    const std::uint64_t period = 1000;
    std::uint64_t sum = 0;
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t gap = prof::jitteredGap(prng, period);
        ASSERT_GE(gap, period / 2);
        ASSERT_LT(gap, period / 2 + period);
        sum += gap;
    }
    // Uniform in [p/2, 3p/2): the mean hugs the period.
    const double mean = static_cast<double>(sum) / 20000.0;
    EXPECT_NEAR(mean, static_cast<double>(period), period * 0.02);
    // Degenerate period never stalls the clock.
    for (int i = 0; i < 100; ++i)
        ASSERT_GE(prof::jitteredGap(prng, 0), 1u);
    for (int i = 0; i < 100; ++i)
        ASSERT_GE(prof::jitteredGap(prng, 1), 1u);
}

// EXPECT_EXIT bodies (macro arguments cannot hold brace-blocks with
// commas): feed one flag + value through the CLI parsers.
void
parseObsFlag(const std::string &flag, const std::string &value)
{
    obs::ObsCli c;
    auto next = [&]() -> std::string { return value; };
    c.tryParse(flag, next);
}

void
parseGcFlag(const std::string &flag, const std::string &value)
{
    obs::GcCli c;
    auto next = [&]() -> std::string { return value; };
    c.tryParse(flag, next);
}

/** A flag at the end of argv, through the canonical next() lambda the
    tools all share. */
void
parseTruncatedArgv()
{
    const char *args[] = {"tool", "--sample-json"};
    const int argc2 = 2;
    obs::ObsCli c;
    int i = 1;
    const std::string a = args[i];
    auto next = [&]() -> std::string {
        if (i + 1 >= argc2) {
            std::cerr << "error: missing value\n";
            std::exit(2);
        }
        return args[++i];
    };
    c.tryParse(a, next);
}

TEST(Cli, ErrorPathsExitTwoWithUsage)
{
    // Unknown flags are left for the caller's usage() path.
    obs::ObsCli cli;
    bool nextCalled = false;
    auto never = [&]() -> std::string {
        nextCalled = true;
        return "";
    };
    EXPECT_FALSE(cli.tryParse("--no-such-flag", never));
    EXPECT_FALSE(nextCalled);

    // Non-numeric values exit 2 with a usage message.
    EXPECT_EXIT(parseObsFlag("--sample-period", "12abc"),
                ::testing::ExitedWithCode(2),
                "--sample-period expects a decimal count");
    EXPECT_EXIT(parseObsFlag("--sample-seed", "many"),
                ::testing::ExitedWithCode(2),
                "--sample-seed expects a decimal count");
    EXPECT_EXIT((void)obs::GcCli::parseSize("12q", "--heap-bytes"),
                ::testing::ExitedWithCode(2),
                "--heap-bytes expects a byte count");
    EXPECT_EXIT(parseGcFlag("--collector", "bogus"),
                ::testing::ExitedWithCode(2),
                "unknown --collector 'bogus'");

    // A flag at the end of argv (value missing) exits 2 through the
    // canonical next() the tools all share.
    EXPECT_EXIT(parseTruncatedArgv(), ::testing::ExitedWithCode(2),
                "missing value");
}

} // namespace
} // namespace jrs
