/**
 * @file
 * Observability tests: registry semantics, span lanes, phase-count
 * conservation across execution modes, hot-method attribution, and
 * the zero-cost-when-off / bit-identical-results contract of jrs::obs
 * (obs.h file comment; ISSUE: results must not depend on whether
 * observability is enabled).
 */
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "harness/experiment.h"
#include "isa/trace_buffer.h"
#include "obs/attribution.h"
#include "obs/obs.h"
#include "sweep/sweep.h"
#include "workloads/workload.h"

namespace jrs {
namespace {

/** Restore the process-wide obs state around every test. */
struct ObsGuard {
    ObsGuard() { resetAll(); }
    ~ObsGuard() { resetAll(); }
    static void resetAll()
    {
        obs::setEnabled(false);
        obs::metrics().reset();
        obs::tracer().clear();
    }
};

const WorkloadInfo &
tiny(const char *name)
{
    const WorkloadInfo *w = findWorkload(name);
    EXPECT_NE(w, nullptr) << name;
    return *w;
}

RunResult
runTiny(const char *name, std::shared_ptr<CompilationPolicy> policy,
        TraceSink *sink = nullptr)
{
    const WorkloadInfo &w = tiny(name);
    RunSpec s;
    s.workload = &w;
    s.arg = w.tinyArg;
    s.policy = std::move(policy);
    s.sink = sink;
    return runWorkload(s);
}

TEST(ObsMetrics, CounterGaugeHistogramBasics)
{
    ObsGuard guard;
    obs::MetricRegistry &reg = obs::metrics();
    reg.counter("t.counter").add(3);
    reg.counter("t.counter").add(4);
    EXPECT_EQ(reg.counterValue("t.counter"), 7u);
    EXPECT_EQ(reg.counterValue("t.never"), 0u);

    reg.gauge("t.gauge").set(2.5);
    reg.gauge("t.gauge").set(1.25);
    EXPECT_EQ(reg.gaugeValue("t.gauge"), 1.25);

    obs::Histogram &h = reg.histogram("t.hist");
    h.record(1.0);
    h.record(2.0);
    h.record(1000.0);
    const obs::Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.count, 3u);
    EXPECT_EQ(s.sum, 1003.0);
    EXPECT_EQ(s.min, 1.0);
    EXPECT_EQ(s.max, 1000.0);
    EXPECT_DOUBLE_EQ(s.mean(), 1003.0 / 3.0);
}

TEST(ObsMetrics, ConcurrentCounterAddsAreLossless)
{
    ObsGuard guard;
    obs::Counter &c = obs::metrics().counter("t.concurrent");
    constexpr int kThreads = 8;
    constexpr int kAdds = 20000;
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&c] {
            for (int i = 0; i < kAdds; ++i)
                c.add(1);
        });
    }
    for (std::thread &t : pool)
        t.join();
    EXPECT_EQ(c.value(),
              static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(ObsMetrics, JsonSnapshotIsStableAndCarriesSchema)
{
    ObsGuard guard;
    obs::MetricRegistry &reg = obs::metrics();
    reg.counter("b.second").add(2);
    reg.counter("a.first").add(1);
    reg.gauge("g.depth").set(3.0);
    reg.histogram("h.sizes").record(17.0);
    const std::string one = reg.toJson();
    const std::string two = reg.toJson();
    EXPECT_EQ(one, two);
    EXPECT_NE(one.find("\"schema\": \"jrs-metrics-v1\""),
              std::string::npos);
    // Sorted name order within each section.
    EXPECT_LT(one.find("a.first"), one.find("b.second"));
    EXPECT_NE(one.find("h.sizes"), std::string::npos);
}

TEST(ObsSpans, ThreadsGetDistinctLanesAndJsonRenders)
{
    ObsGuard guard;
    obs::setEnabled(true);
    obs::SpanTracer &tracer = obs::tracer();
    tracer.nameCurrentLane("test-main");
    {
        obs::ScopedSpan span("outer", "test");
        span.arg("k", "v");
    }
    std::uint32_t mainLane = obs::SpanTracer::currentLane();
    std::uint32_t otherLane = mainLane;
    std::thread other([&] {
        otherLane = obs::SpanTracer::currentLane();
        obs::ScopedSpan span("inner", "test");
    });
    other.join();
    EXPECT_NE(mainLane, otherLane);
    EXPECT_EQ(tracer.size(), 2u);

    const std::string json = tracer.toJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"outer\""), std::string::npos);
    EXPECT_NE(json.find("\"inner\""), std::string::npos);
    EXPECT_NE(json.find("test-main"), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

/**
 * The paper's accounting identity: every simulated instruction belongs
 * to exactly one phase, in every execution mode, and an external
 * CountingSink sees exactly what the engine reports.
 */
TEST(ObsPhases, PhaseSumsEqualTotalsInAllModes)
{
    ObsGuard guard;
    const struct {
        const char *name;
        std::shared_ptr<CompilationPolicy> policy;
    } modes[] = {
        {"interp", std::make_shared<NeverCompilePolicy>()},
        {"jit", std::make_shared<AlwaysCompilePolicy>()},
        {"counter", std::make_shared<CounterPolicy>(2)},
    };
    for (const auto &mode : modes) {
        CountingSink counting;
        const RunResult res = runTiny("compress", mode.policy,
                                      &counting);
        std::uint64_t phaseSum = 0;
        for (std::size_t p = 0; p < kNumPhases; ++p) {
            phaseSum += res.phaseEvents[p];
            EXPECT_EQ(counting.inPhase(static_cast<Phase>(p)),
                      res.phaseEvents[p])
                << mode.name << " phase " << p;
        }
        EXPECT_EQ(phaseSum, res.totalEvents) << mode.name;
        EXPECT_EQ(counting.total(), res.totalEvents) << mode.name;
    }
}

TEST(ObsPhases, PhaseSumsEqualTotalsUnderOracle)
{
    ObsGuard guard;
    CountingSink counting;
    const WorkloadInfo &w = tiny("compress");
    const OracleOutcome out =
        runOracleExperiment(w, w.tinyArg, &counting);
    std::uint64_t phaseSum = 0;
    for (std::size_t p = 0; p < kNumPhases; ++p) {
        phaseSum += out.oracleRun.phaseEvents[p];
        EXPECT_EQ(counting.inPhase(static_cast<Phase>(p)),
                  out.oracleRun.phaseEvents[p]);
    }
    EXPECT_EQ(phaseSum, out.oracleRun.totalEvents);
    EXPECT_EQ(counting.total(), out.oracleRun.totalEvents);
}

TEST(ObsToggle, OffLeavesRegistryAndTracerUntouched)
{
    ObsGuard guard;
    ASSERT_FALSE(obs::enabled());
    const RunResult res =
        runTiny("compress", std::make_shared<AlwaysCompilePolicy>());
    EXPECT_GT(res.totalEvents, 0u);
    EXPECT_EQ(obs::metrics().counterValue("vm.runs"), 0u);
    EXPECT_EQ(obs::metrics().counterValue("jit.compilations"), 0u);
    EXPECT_EQ(obs::tracer().size(), 0u);
}

TEST(ObsToggle, OnPublishesEngineAndJitMetrics)
{
    ObsGuard guard;
    obs::setEnabled(true);
    const RunResult res =
        runTiny("compress", std::make_shared<AlwaysCompilePolicy>());
    obs::MetricRegistry &reg = obs::metrics();
    EXPECT_EQ(reg.counterValue("vm.runs"), 1u);
    EXPECT_EQ(reg.counterValue("vm.events.total"), res.totalEvents);
    for (std::size_t p = 0; p < kNumPhases; ++p) {
        EXPECT_EQ(reg.counterValue(
                      std::string("vm.events.")
                      + phaseName(static_cast<Phase>(p))),
                  res.phaseEvents[p]);
    }
    EXPECT_EQ(reg.counterValue("jit.compilations"),
              res.methodsCompiled);
    EXPECT_EQ(reg.counterValue("vm.methods_compiled"),
              res.methodsCompiled);
    const obs::Histogram::Snapshot insts =
        reg.histogram("jit.native_insts").snapshot();
    EXPECT_EQ(insts.count, res.methodsCompiled);
    // At least one vm.run span plus one jit.translate span per
    // compilation (uncompilable attempts add spans of their own).
    EXPECT_GE(obs::tracer().size(), 1 + res.methodsCompiled);
}

TEST(ObsAttribution, ConservesEveryPhaseAndAttributesHotCode)
{
    ObsGuard guard;
    const WorkloadInfo &w = tiny("compress");
    const Program prog = w.build();
    EngineConfig cfg;
    cfg.policy = std::make_shared<CounterPolicy>(2);
    TraceBuffer buffer;
    cfg.sink = &buffer;
    ExecutionEngine engine(prog, cfg);
    const RunResult res = engine.run(w.tinyArg);
    ASSERT_TRUE(res.completed);

    const obs::MethodMap map =
        obs::MethodMap::forRun(engine.registry(), engine.codeCache());
    EXPECT_GT(map.rows(), 0u);
    obs::AttributionSink attr(map);
    buffer.replay(attr);

    EXPECT_EQ(attr.totalEvents(), res.totalEvents);
    for (std::size_t p = 0; p < kNumPhases; ++p) {
        const Phase phase = static_cast<Phase>(p);
        EXPECT_EQ(attr.phaseEvents(phase), res.phaseEvents[p]);
        // Conservation: the full top list (unattributed bucket
        // included) sums back to the phase total.
        std::uint64_t sum = 0;
        for (const obs::AttributedMethod &m :
             attr.top(phase, map.rows() + 1))
            sum += m.events;
        EXPECT_EQ(sum, res.phaseEvents[p]) << phaseName(phase);
    }

    // The joins are essentially exact for the executing phases: every
    // interpreter step starts with a bytecode fetch and native pcs lie
    // inside installed methods.
    for (const Phase phase : {Phase::Interpret, Phase::NativeExec}) {
        const std::uint64_t total = attr.phaseEvents(phase);
        if (total == 0)
            continue;
        EXPECT_GE(static_cast<double>(attr.attributed(phase)),
                  0.99 * static_cast<double>(total))
            << phaseName(phase);
    }
}

/** CountingSink as a sweep model: phase totals become metrics. */
sweep::SweepPoint
countingPoint(const std::string &label, const sweep::TraceKey &key)
{
    return sweep::makePoint<CountingSink>(
        label, key, [] { return std::make_unique<CountingSink>(); },
        [](CountingSink &sink, const RecordedRun &run) {
            std::vector<sweep::Metric> out{
                {"total", static_cast<double>(sink.total())},
                {"events",
                 static_cast<double>(run.result.totalEvents)},
            };
            for (std::size_t p = 0; p < kNumPhases; ++p) {
                out.push_back(
                    {phaseName(static_cast<Phase>(p)),
                     static_cast<double>(
                         sink.inPhase(static_cast<Phase>(p)))});
            }
            return out;
        });
}

std::vector<sweep::SweepPoint>
tinyGrid()
{
    std::vector<sweep::SweepPoint> grid;
    for (const char *name : {"compress", "db"}) {
        const WorkloadInfo &w = tiny(name);
        for (const bool jit : {false, true}) {
            const sweep::TraceKey key = sweep::traceKey(
                name,
                jit ? sweep::ExecMode::jit()
                    : sweep::ExecMode::interp(),
                w.tinyArg);
            grid.push_back(countingPoint(
                std::string(name) + (jit ? "/jit" : "/interp"), key));
        }
    }
    return grid;
}

TEST(ObsSweep, ResultsBitIdenticalWithObsOnAndOff)
{
    ObsGuard guard;
    ASSERT_FALSE(obs::enabled());
    sweep::SweepEngine plain{{}};
    const sweep::SweepResult off = plain.run(tinyGrid());
    ASSERT_TRUE(off.allOk());

    ObsGuard::resetAll();
    obs::setEnabled(true);
    sweep::SweepEngine observed{{}};
    const sweep::SweepResult on = observed.run(tinyGrid());
    ASSERT_TRUE(on.allOk());

    ASSERT_EQ(off.points.size(), on.points.size());
    for (std::size_t i = 0; i < off.points.size(); ++i) {
        const sweep::PointResult &a = off.points[i];
        const sweep::PointResult &b = on.points[i];
        EXPECT_EQ(a.label, b.label);
        EXPECT_EQ(a.traceEvents, b.traceEvents);
        ASSERT_EQ(a.metrics.size(), b.metrics.size()) << a.label;
        for (std::size_t m = 0; m < a.metrics.size(); ++m) {
            EXPECT_EQ(a.metrics[m].name, b.metrics[m].name);
            // Bitwise equality, not tolerance: observability must not
            // perturb the simulation at all.
            EXPECT_EQ(a.metrics[m].value, b.metrics[m].value)
                << a.label << "/" << a.metrics[m].name;
        }
    }

    // And the observed sweep actually published its own telemetry.
    obs::MetricRegistry &reg = obs::metrics();
    EXPECT_EQ(reg.counterValue("sweep.points.done"),
              on.points.size());
    EXPECT_EQ(reg.counterValue("sweep.points.failed"), 0u);
    EXPECT_EQ(reg.counterValue("trace_cache.recordings"), 4u);
    EXPECT_EQ(reg.gaugeValue("sweep.queue_depth"), 0.0);
    EXPECT_EQ(reg.histogram("sweep.point_seconds").snapshot().count,
              on.points.size());
}

TEST(ObsSweep, ProgressCallbackIsMonotoneAndComplete)
{
    ObsGuard guard;
    std::vector<sweep::SweepProgress> seen;
    sweep::SweepOptions opts;
    opts.jobs = 2;
    opts.onProgress = [&seen](const sweep::SweepProgress &p) {
        seen.push_back(p);
    };
    sweep::SweepEngine engine(opts);
    const sweep::SweepResult result = engine.run(tinyGrid());
    ASSERT_TRUE(result.allOk());

    ASSERT_FALSE(seen.empty());
    // 4 points over 4 distinct streams -> one callback per group.
    EXPECT_EQ(seen.size(), 4u);
    for (std::size_t i = 0; i < seen.size(); ++i) {
        EXPECT_EQ(seen[i].groupsDone, i + 1);
        EXPECT_EQ(seen[i].groupsTotal, 4u);
        EXPECT_EQ(seen[i].pointsTotal, result.points.size());
        if (i > 0) {
            EXPECT_GT(seen[i].pointsDone, seen[i - 1].pointsDone);
            EXPECT_GE(seen[i].traces.recordings,
                      seen[i - 1].traces.recordings);
        }
    }
    EXPECT_EQ(seen.back().pointsDone, result.points.size());
    EXPECT_EQ(seen.back().traces.recordings,
              result.traces.recordings);
}

TEST(ObsTraceCache, PublishesHitAndRecordCounters)
{
    ObsGuard guard;
    obs::setEnabled(true);
    sweep::TraceCache cache("");
    const WorkloadInfo &w = tiny("hello");
    const sweep::TraceKey key =
        sweep::traceKey("hello", sweep::ExecMode::interp(), w.tinyArg);
    (void)cache.get(key);
    (void)cache.get(key);
    obs::MetricRegistry &reg = obs::metrics();
    EXPECT_EQ(reg.counterValue("trace_cache.recordings"), 1u);
    EXPECT_EQ(reg.counterValue("trace_cache.memory_hits"), 1u);
    EXPECT_EQ(reg.counterValue("trace_cache.disk_loads"), 0u);
    // The record pass left a span behind.
    const std::string json = obs::tracer().toJson();
    EXPECT_NE(json.find("trace.record"), std::string::npos);
}

} // namespace
} // namespace jrs
