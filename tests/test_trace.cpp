#include <gtest/gtest.h>

#include "arch/mix/instruction_mix.h"
#include "isa/emitter.h"
#include "vm/interp/handler_model.h"
#include "vm_test_util.h"

namespace jrs {
namespace {

TEST(Trace, KindHelpers)
{
    EXPECT_TRUE(isControl(NKind::Branch));
    EXPECT_TRUE(isControl(NKind::IndirectCall));
    EXPECT_TRUE(isControl(NKind::Ret));
    EXPECT_FALSE(isControl(NKind::Load));
    EXPECT_TRUE(isMemory(NKind::Load));
    EXPECT_TRUE(isMemory(NKind::Store));
    EXPECT_FALSE(isMemory(NKind::IntAlu));
    EXPECT_STREQ(nkindName(NKind::IndirectJump), "indirect_jump");
    EXPECT_STREQ(phaseName(Phase::Translate), "translate");
}

TEST(Trace, EmitterIsNoOpWithoutSink)
{
    TraceEmitter e(nullptr);
    EXPECT_FALSE(e.enabled());
    e.alu(Phase::Interpret, 0x1000);  // must not crash
    e.load(Phase::Interpret, 0x1000, 0x2000);
}

TEST(Trace, EmitterFillsFields)
{
    RecordingSink rec;
    TraceEmitter e(&rec);
    e.load(Phase::Runtime, 0x10, 0x20, 8, 3, 4);
    e.store(Phase::Translate, 0x14, 0x24, 2, 5, 6);
    e.branch(Phase::Interpret, 0x18, 0x40, true, 7, 8);
    e.control(Phase::NativeExec, 0x1c, NKind::IndirectCall, 0x80, 9);
    ASSERT_EQ(rec.events().size(), 4u);
    const auto &ld = rec.events()[0];
    EXPECT_EQ(ld.kind, NKind::Load);
    EXPECT_EQ(ld.mem, 0x20u);
    EXPECT_EQ(ld.memSize, 8);
    EXPECT_EQ(ld.rd, 3);
    const auto &br = rec.events()[2];
    EXPECT_TRUE(br.taken);
    EXPECT_EQ(br.target, 0x40u);
    const auto &ic = rec.events()[3];
    EXPECT_EQ(ic.kind, NKind::IndirectCall);
    EXPECT_EQ(ic.phase, Phase::NativeExec);
}

TEST(Trace, MultiSinkFansOut)
{
    CountingSink a, b;
    MultiSink multi;
    multi.add(&a);
    multi.add(&b);
    TraceEvent ev;
    ev.phase = Phase::Translate;
    multi.onEvent(ev);
    multi.onEvent(ev);
    EXPECT_EQ(a.total(), 2u);
    EXPECT_EQ(b.total(), 2u);
    EXPECT_EQ(a.inPhase(Phase::Translate), 2u);
    a.reset();
    EXPECT_EQ(a.total(), 0u);
}

TEST(Trace, InterpreterEmitsDispatchPattern)
{
    // A minimal program; inspect the first bytecode's native events.
    const Program prog = test::makeProgram([](MethodBuilder &m) {
        m.iconst(1).iconst(2).iadd().ireturn();
    });
    RecordingSink rec;
    const RunResult r = test::runProgram(
        prog, 0, std::make_shared<NeverCompilePolicy>(), &rec);
    ASSERT_TRUE(r.completed);
    const auto &evs = rec.events();
    ASSERT_GT(evs.size(), 8u);

    // Entry-frame setup emits a few Runtime-phase events first; the
    // dispatch pattern starts at the first Interpret-phase event.
    std::size_t i0 = 0;
    while (i0 < evs.size() && evs[i0].phase != Phase::Interpret)
        ++i0;
    ASSERT_LT(i0 + 3, evs.size());

    // Opcode fetch — a 1-byte load from the bytecode area.
    EXPECT_EQ(evs[i0].kind, NKind::Load);
    EXPECT_EQ(evs[i0].pc, kDispatchPc);
    EXPECT_TRUE(inSegment(evs[i0].mem, seg::kClassData));
    EXPECT_EQ(evs[i0].memSize, 1);

    // Poll load + never-taken poll branch.
    EXPECT_EQ(evs[i0 + 2].kind, NKind::Load);
    EXPECT_EQ(evs[i0 + 3].kind, NKind::Branch);
    EXPECT_FALSE(evs[i0 + 3].taken);
    // Jump-table load, then the dispatch indirect jump.
    EXPECT_EQ(evs[i0 + 4].kind, NKind::Load);
    EXPECT_EQ(evs[i0 + 5].kind, NKind::IndirectJump);
    EXPECT_EQ(evs[i0 + 5].target, handlerPc(Op::Iconst8));
}

TEST(Trace, InterpreterStackTrafficHitsFrameAddresses)
{
    const Program prog = test::makeProgram([](MethodBuilder &m) {
        m.iconst(1).iconst(2).iadd().ireturn();
    });
    RecordingSink rec;
    const RunResult r = test::runProgram(
        prog, 0, std::make_shared<NeverCompilePolicy>(), &rec);
    ASSERT_TRUE(r.completed);
    // Some stores must land in the stack segment (operand pushes).
    bool saw_stack_store = false;
    for (const auto &ev : rec.events()) {
        if (ev.kind == NKind::Store
            && inSegment(ev.mem, seg::kStacks)) {
            saw_stack_store = true;
        }
        EXPECT_EQ(ev.phase == Phase::Interpret
                      || ev.phase == Phase::Runtime,
                  true);
    }
    EXPECT_TRUE(saw_stack_store);
}

TEST(Trace, JitModeEmitsTranslateThenNative)
{
    const Program prog = test::makeProgram([](MethodBuilder &m) {
        m.iconst(1).iconst(2).iadd().ireturn();
    });
    RecordingSink rec;
    const RunResult r = test::runProgram(
        prog, 0, std::make_shared<AlwaysCompilePolicy>(), &rec);
    ASSERT_TRUE(r.completed);
    bool saw_install_store = false;
    bool saw_native = false;
    for (const auto &ev : rec.events()) {
        if (ev.phase == Phase::Translate && ev.kind == NKind::Store
            && inSegment(ev.mem, seg::kCodeCache)) {
            saw_install_store = true;
            // Code installs happen before any native execution.
            EXPECT_FALSE(saw_native);
        }
        if (ev.phase == Phase::NativeExec) {
            saw_native = true;
            EXPECT_TRUE(inSegment(ev.pc, seg::kCodeCache));
        }
    }
    EXPECT_TRUE(saw_install_store);
    EXPECT_TRUE(saw_native);
}

TEST(Trace, ConditionalBranchOutcomeMatchesJavaBranch)
{
    // Loop 3 times: the handler's native branch must be taken exactly
    // as often as the Java backward branch.
    const Program prog = test::makeProgram([](MethodBuilder &m) {
        m.locals(2);
        m.iconst(3).istore(1);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(1).ifle(done);
        m.iinc(1, -1);
        m.gotoL(loop);
        m.bind(done);
        m.iconst(0).ireturn();
    });
    RecordingSink rec;
    test::runProgram(prog, 0, std::make_shared<NeverCompilePolicy>(),
                     &rec);
    std::uint64_t taken = 0, not_taken = 0;
    for (const auto &ev : rec.events()) {
        if (ev.kind == NKind::Branch && ev.pc == handlerPc(Op::Ifle)
                                            + 0x44) {
            (ev.taken ? taken : not_taken) += 1;
        }
    }
    EXPECT_EQ(taken, 1u);      // final exit
    EXPECT_EQ(not_taken, 3u);  // three loop iterations
}

TEST(Mix, CategoriesSumToTotal)
{
    const Program prog = test::makeProgram([](MethodBuilder &m) {
        m.locals(2);
        m.iconst(50).istore(1);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(1).ifle(done);
        m.iinc(1, -1);
        m.gotoL(loop);
        m.bind(done);
        m.iconst(0).ireturn();
    });
    InstructionMix mix;
    test::runProgram(prog, 0, std::make_shared<NeverCompilePolicy>(),
                     &mix);
    std::uint64_t sum = 0;
    for (std::size_t k = 0; k < kNumNKinds; ++k)
        sum += mix.count(static_cast<NKind>(k));
    EXPECT_EQ(sum, mix.total());
    EXPECT_GT(mix.memoryOps(), 0u);
    EXPECT_GT(mix.controlOps(), 0u);
    EXPECT_GT(mix.indirectOps(), 0u);
    EXPECT_DOUBLE_EQ(mix.pct(mix.total()), 100.0);
}

TEST(Mix, PhaseBreakdownConsistent)
{
    const Program prog = test::makeProgram([](MethodBuilder &m) {
        m.iconst(5).iconst(6).imul().ireturn();
    });
    InstructionMix mix;
    test::runProgram(prog, 0, std::make_shared<AlwaysCompilePolicy>(),
                     &mix);
    std::uint64_t by_phase = 0;
    for (std::size_t p = 0; p < kNumPhases; ++p) {
        for (std::size_t k = 0; k < kNumNKinds; ++k) {
            by_phase += mix.count(static_cast<Phase>(p),
                                  static_cast<NKind>(k));
        }
    }
    EXPECT_EQ(by_phase, mix.total());
}

} // namespace
} // namespace jrs
