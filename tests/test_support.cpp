#include <gtest/gtest.h>

#include <sstream>

#include "support/random.h"
#include "support/statistics.h"
#include "support/table.h"

namespace jrs {
namespace {

TEST(Statistics, PercentAndRatio)
{
    EXPECT_DOUBLE_EQ(percent(1, 4), 25.0);
    EXPECT_DOUBLE_EQ(percent(0, 4), 0.0);
    EXPECT_DOUBLE_EQ(percent(5, 0), 0.0);
    EXPECT_DOUBLE_EQ(ratio(3, 4), 0.75);
    EXPECT_DOUBLE_EQ(ratio(3, 0), 0.0);
}

TEST(Statistics, WithCommas)
{
    EXPECT_EQ(withCommas(0), "0");
    EXPECT_EQ(withCommas(999), "999");
    EXPECT_EQ(withCommas(1000), "1,000");
    EXPECT_EQ(withCommas(1234567), "1,234,567");
    EXPECT_EQ(withCommas(1000000000ull), "1,000,000,000");
}

TEST(Statistics, FixedFormatting)
{
    EXPECT_EQ(fixed(1.23456, 2), "1.23");
    EXPECT_EQ(fixed(1.0, 0), "1");
    EXPECT_EQ(fixed(-2.5, 1), "-2.5");
}

TEST(Statistics, HistogramBasics)
{
    Histogram h(10, 4);  // buckets [0,10) [10,20) [20,30) [30,40) + of
    h.add(0);
    h.add(9);
    h.add(10);
    h.add(35);
    h.add(1000);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 0u + 9 + 10 + 35 + 1000);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u);  // overflow
    EXPECT_DOUBLE_EQ(h.mean(), (0.0 + 9 + 10 + 35 + 1000) / 5);
}

TEST(Statistics, HistogramFractionBelow)
{
    Histogram h(1, 10);
    for (std::uint64_t v = 0; v < 10; ++v)
        h.add(v);
    EXPECT_DOUBLE_EQ(h.fractionBelow(5), 0.5);
    EXPECT_DOUBLE_EQ(h.fractionBelow(10), 1.0);
    EXPECT_DOUBLE_EQ(h.fractionBelow(0), 0.0);
}

TEST(Statistics, HistogramEmpty)
{
    Histogram h(4, 4);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.fractionBelow(100), 0.0);
}

TEST(Random, Deterministic)
{
    XorShift64 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    XorShift64 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Random, BoundedStaysInRange)
{
    XorShift64 r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(Random, RangeInclusive)
{
    XorShift64 r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const std::int32_t v = r.nextInRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, ZeroSeedIsRemapped)
{
    XorShift64 r(0);
    EXPECT_NE(r.next(), 0u);
}

TEST(Random, DoubleInUnitInterval)
{
    XorShift64 r(11);
    for (int i = 0; i < 1000; ++i) {
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Table, AlignsAndCounts)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22,000"});
    EXPECT_EQ(t.numRows(), 2u);
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22,000"), std::string::npos);
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, MissingCellsRenderEmpty)
{
    Table t({"a", "b", "c"});
    t.addRow({"x"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find('x'), std::string::npos);
}

} // namespace
} // namespace jrs
