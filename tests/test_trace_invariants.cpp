/**
 * Structural invariants of the native trace stream: every event must
 * carry a pc inside a known code segment, memory operands inside data
 * segments, valid register ids, and consistent control metadata — for
 * every workload, in every execution mode. These invariants are what
 * the architecture models silently rely on.
 */
#include <gtest/gtest.h>

#include "vm/interp/handler_model.h"
#include "vm_test_util.h"
#include "workloads/workload.h"

namespace jrs {
namespace {

/** Validating sink: records violations instead of asserting per event
 *  (a run produces millions of events). */
class InvariantSink : public TraceSink {
  public:
    void onEvent(const TraceEvent &ev) override {
        ++events_;

        // pc must lie in a code segment.
        const bool pc_ok = inSegment(ev.pc, seg::kInterpCode)
            || inSegment(ev.pc, seg::kTranslateCode)
            || inSegment(ev.pc, seg::kCodeCache)
            || inSegment(ev.pc, seg::kRuntimeCode);
        if (!pc_ok)
            ++badPc_;

        // Phase must match the pc's home segment for code we control.
        if (ev.phase == Phase::Interpret
            && !inSegment(ev.pc, seg::kInterpCode)) {
            ++phaseMismatch_;
        }
        if (ev.phase == Phase::NativeExec
            && !inSegment(ev.pc, seg::kCodeCache)) {
            ++phaseMismatch_;
        }

        // Memory operands must lie in data-bearing segments. (The
        // code cache counts: code installation writes there, and
        // that is precisely the paper's Figure 3/5 effect.)
        if (isMemory(ev.kind)) {
            const bool mem_ok = inSegment(ev.mem, seg::kHeap)
                || inSegment(ev.mem, seg::kStacks)
                || inSegment(ev.mem, seg::kClassData)
                || inSegment(ev.mem, seg::kTranslateData)
                || inSegment(ev.mem, seg::kRuntimeData)
                || inSegment(ev.mem, seg::kCodeCache)
                || inSegment(ev.mem, seg::kInterpCode)    // jump table
                || inSegment(ev.mem, seg::kTranslateCode);  // rodata
            // (code segments appear as data when code is installed,
            // jump tables are indexed, or encoder templates are read —
            // all real phenomena the paper's Section 6 discusses)
            if (!mem_ok)
                ++badMem_;
            if (ev.memSize == 0 || ev.memSize > 8)
                ++badMemSize_;
        }

        // Register ids: < 32 or the explicit no-register sentinel.
        auto reg_ok = [](Reg r) { return r < 32 || r == kNoReg; };
        if (!reg_ok(ev.rd) || !reg_ok(ev.rs1) || !reg_ok(ev.rs2))
            ++badReg_;

        // Control transfers carry a target; non-control events don't
        // get classified as taken branches.
        if (isControl(ev.kind) && ev.kind != NKind::Ret
            && ev.kind != NKind::Branch && ev.target == 0) {
            ++badTarget_;
        }
    }

    std::uint64_t events_ = 0;
    std::uint64_t badPc_ = 0;
    std::uint64_t badMem_ = 0;
    std::uint64_t badMemSize_ = 0;
    std::uint64_t badReg_ = 0;
    std::uint64_t badTarget_ = 0;
    std::uint64_t phaseMismatch_ = 0;
};

class TraceInvariants : public ::testing::TestWithParam<const char *> {
};

TEST_P(TraceInvariants, HoldInInterpMode)
{
    const WorkloadInfo *w = findWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    InvariantSink sink;
    const Program prog = w->build();
    (void)test::runProgram(prog, w->tinyArg,
                           std::make_shared<NeverCompilePolicy>(),
                           &sink);
    EXPECT_GT(sink.events_, 0u);
    EXPECT_EQ(sink.badPc_, 0u);
    EXPECT_EQ(sink.badMem_, 0u);
    EXPECT_EQ(sink.badMemSize_, 0u);
    EXPECT_EQ(sink.badReg_, 0u);
    EXPECT_EQ(sink.badTarget_, 0u);
    EXPECT_EQ(sink.phaseMismatch_, 0u);
}

TEST_P(TraceInvariants, HoldInJitMode)
{
    const WorkloadInfo *w = findWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    InvariantSink sink;
    const Program prog = w->build();
    (void)test::runProgram(prog, w->tinyArg,
                           std::make_shared<AlwaysCompilePolicy>(),
                           &sink);
    EXPECT_EQ(sink.badPc_, 0u);
    EXPECT_EQ(sink.badMem_, 0u);
    EXPECT_EQ(sink.badReg_, 0u);
    EXPECT_EQ(sink.phaseMismatch_, 0u);
}

TEST_P(TraceInvariants, HoldUnderTieredWithExtras)
{
    const WorkloadInfo *w = findWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    InvariantSink sink;
    const Program prog = w->build();
    EngineConfig cfg;
    cfg.policy = std::make_shared<CounterPolicy>(3);
    cfg.osrBackEdgeThreshold = 32;
    cfg.jitInlining = true;
    cfg.interpreterFolding = true;
    cfg.sink = &sink;
    ExecutionEngine engine(prog, cfg);
    const RunResult r = engine.run(w->tinyArg);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(sink.badPc_, 0u);
    EXPECT_EQ(sink.badMem_, 0u);
    EXPECT_EQ(sink.badReg_, 0u);
    EXPECT_EQ(sink.phaseMismatch_, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, TraceInvariants,
    ::testing::Values("compress", "jess", "db", "javac", "mpeg",
                      "mtrt", "jack", "hello"),
    [](const auto &info) { return std::string(info.param); });

TEST(TraceInvariants, InterpHandlersStayInTheirSlots)
{
    // Interpret-phase handler-body pcs must stay inside the emitting
    // opcode's slot (the compact-footprint property behind the
    // interpreter's I-cache behaviour). We can't know the opcode per
    // event, but every Interpret pc must be in the dispatch area, the
    // invoke stubs, or some handler slot.
    class SlotSink : public TraceSink {
      public:
        void onEvent(const TraceEvent &ev) override {
            if (ev.phase != Phase::Interpret)
                return;
            if (!inSegment(ev.pc, seg::kInterpCode)) {
                ++outside_;
                return;
            }
            const SimAddr off = ev.pc - seg::kInterpCode;
            if (off < 0x1000)
                return;  // dispatch loop / tables / stubs
            const SimAddr slot_end = kHandlerBase
                + kHandlerSlotBytes * kNumOpcodes;
            if (ev.pc >= slot_end)
                ++outside_;
        }
        std::uint64_t outside_ = 0;
    } sink;
    const WorkloadInfo *w = findWorkload("javac");
    const Program prog = w->build();
    (void)test::runProgram(prog, w->tinyArg,
                           std::make_shared<NeverCompilePolicy>(),
                           &sink);
    EXPECT_EQ(sink.outside_, 0u);
}

} // namespace
} // namespace jrs
