/**
 * Bytecode semantics tests. Every scenario runs under BOTH the
 * interpreter and the JIT (bothModes) and asserts identical results —
 * each test is simultaneously a semantics check and a differential
 * interpreter-vs-compiler check.
 */
#include <gtest/gtest.h>

#include <climits>

#include "vm_test_util.h"

namespace jrs {
namespace {

using test::bothModes;

TEST(Arith, AddSubMul)
{
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iconst(7).iconst(5).iadd().ireturn();
    }), 12);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iconst(7).iconst(5).isub().ireturn();
    }), 2);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iconst(-7).iconst(5).imul().ireturn();
    }), -35);
}

TEST(Arith, OverflowWraps)
{
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iconst(INT_MAX).iconst(1).iadd().ireturn();
    }), INT_MIN);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iconst(INT_MIN).iconst(-1).imul().ireturn();
    }), INT_MIN);
}

TEST(Arith, DivRemBasics)
{
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iconst(17).iconst(5).idiv().ireturn();
    }), 3);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iconst(-17).iconst(5).idiv().ireturn();
    }), -3);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iconst(17).iconst(5).irem().ireturn();
    }), 2);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iconst(-17).iconst(5).irem().ireturn();
    }), -2);
}

TEST(Arith, IntMinDivMinusOne)
{
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iconst(INT_MIN).iconst(-1).idiv().ireturn();
    }), INT_MIN);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iconst(INT_MIN).iconst(-1).irem().ireturn();
    }), 0);
}

TEST(Arith, NegAndLogic)
{
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iconst(5).ineg().ireturn();
    }), -5);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iconst(INT_MIN).ineg().ireturn();
    }), INT_MIN);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iconst(0xf0).iconst(0x3c).iand().ireturn();
    }), 0x30);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iconst(0xf0).iconst(0x0f).ior().ireturn();
    }), 0xff);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iconst(0xff).iconst(0x0f).ixor().ireturn();
    }), 0xf0);
}

TEST(Arith, ShiftsMaskCount)
{
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iconst(1).iconst(33).ishl().ireturn();  // 33 & 31 == 1
    }), 2);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iconst(-8).iconst(1).ishr().ireturn();
    }), -4);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iconst(-8).iconst(1).iushr().ireturn();
    }), 0x7ffffffc);
}

TEST(Float, Basics)
{
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.fconst(1.5f).fconst(2.25f).fadd().fconst(3.75f).fcmpl()
            .ireturn();
    }), 0);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.fconst(10.0f).fconst(4.0f).fdiv().f2i().ireturn();
    }), 2);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.fconst(2.0f).fneg().f2i().ireturn();
    }), -2);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.fconst(3.0f).fconst(2.0f).fmul().f2i().ireturn();
    }), 6);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.fconst(5.0f).fconst(2.0f).fsub().f2i().ireturn();
    }), 3);
}

TEST(Float, CompareOrdering)
{
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.fconst(1.0f).fconst(2.0f).fcmpl().ireturn();
    }), -1);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.fconst(2.0f).fconst(1.0f).fcmpl().ireturn();
    }), 1);
}

TEST(Float, NanComparesLow)
{
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        // 0/0 -> NaN
        m.fconst(0.0f).fconst(0.0f).fdiv().fconst(1.0f).fcmpl()
            .ireturn();
    }), -1);
}

TEST(Float, F2iSaturates)
{
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.fconst(1e30f).f2i().ireturn();
    }), INT_MAX);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.fconst(-1e30f).f2i().ireturn();
    }), INT_MIN);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.fconst(0.0f).fconst(0.0f).fdiv().f2i().ireturn();  // NaN -> 0
    }), 0);
}

TEST(Conversions, I2fAndNarrowing)
{
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iconst(41).i2f().fconst(1.0f).fadd().f2i().ireturn();
    }), 42);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iconst(0x12345).i2c().ireturn();
    }), 0x2345);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iconst(0x1ff).i2b().ireturn();  // low byte 0xff -> -1
    }), -1);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iconst(0x17f).i2b().ireturn();
    }), 0x7f);
}

TEST(Stack, DupSwapPopDupX1)
{
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iconst(6).dup().imul().ireturn();
    }), 36);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iconst(10).iconst(3).swap().isub().ireturn();  // 3 - 10
    }), -7);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iconst(1).iconst(2).pop().ireturn();
    }), 1);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        // a=2 b=3 -> b a b; consume: top two sub (a-b = -1), then
        // add the deep b: 3 + (2-3) = 2... stack after dupx1:
        // [3, 2, 3]; isub -> [3, -1]; iadd -> 2
        m.iconst(2).iconst(3).dupX1().isub().iadd().ireturn();
    }), 2);
}

TEST(Locals, StoreLoadIinc)
{
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.locals(3);
        m.iconst(5).istore(1);
        m.iconst(6).istore(2);
        m.iinc(1, 100);
        m.iload(1).iload(2).iadd().ireturn();
    }), 111);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.locals(2);
        m.iinc(1, -128);
        m.iload(1).ireturn();
    }), -128);
}

TEST(Locals, ManyLocalsSpillInJit)
{
    // 20 locals exceed the 12 local registers: exercises spill slots.
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.locals(21);
        for (std::uint8_t i = 1; i <= 20; ++i)
            m.iconst(i).istore(i);
        m.iconst(0);
        for (std::uint8_t i = 1; i <= 20; ++i)
            m.iload(i).iadd();
        m.ireturn();
    }), 210);
}

TEST(Stack, DeepOperandStackSpills)
{
    // Push 12 values (stack regs hold 7) then fold them.
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        for (int i = 1; i <= 12; ++i)
            m.iconst(i);
        for (int i = 0; i < 11; ++i)
            m.iadd();
        m.ireturn();
    }), 78);
}

TEST(Branches, AllIntComparisons)
{
    auto pick = [](void (*emit)(MethodBuilder &, Label)) {
        return [emit](MethodBuilder &m) {
            Label yes = m.newLabel();
            m.iload(0).iconst(10);
            emit(m, yes);
            m.iconst(0).ireturn();
            m.bind(yes);
            m.iconst(1).ireturn();
        };
    };
    EXPECT_EQ(bothModes(pick([](MethodBuilder &m, Label l) {
        m.ifIcmpeq(l);
    }), 10), 1);
    EXPECT_EQ(bothModes(pick([](MethodBuilder &m, Label l) {
        m.ifIcmpne(l);
    }), 10), 0);
    EXPECT_EQ(bothModes(pick([](MethodBuilder &m, Label l) {
        m.ifIcmplt(l);
    }), 3), 1);
    EXPECT_EQ(bothModes(pick([](MethodBuilder &m, Label l) {
        m.ifIcmpge(l);
    }), 3), 0);
    EXPECT_EQ(bothModes(pick([](MethodBuilder &m, Label l) {
        m.ifIcmpgt(l);
    }), 30), 1);
    EXPECT_EQ(bothModes(pick([](MethodBuilder &m, Label l) {
        m.ifIcmple(l);
    }), 10), 1);
}

TEST(Branches, ZeroComparisons)
{
    auto prog = [](void (*emit)(MethodBuilder &, Label)) {
        return [emit](MethodBuilder &m) {
            Label yes = m.newLabel();
            m.iload(0);
            emit(m, yes);
            m.iconst(0).ireturn();
            m.bind(yes);
            m.iconst(1).ireturn();
        };
    };
    EXPECT_EQ(bothModes(prog([](MethodBuilder &m, Label l) {
        m.ifeq(l);
    }), 0), 1);
    EXPECT_EQ(bothModes(prog([](MethodBuilder &m, Label l) {
        m.ifne(l);
    }), 0), 0);
    EXPECT_EQ(bothModes(prog([](MethodBuilder &m, Label l) {
        m.iflt(l);
    }), -1), 1);
    EXPECT_EQ(bothModes(prog([](MethodBuilder &m, Label l) {
        m.ifge(l);
    }), 0), 1);
    EXPECT_EQ(bothModes(prog([](MethodBuilder &m, Label l) {
        m.ifgt(l);
    }), 0), 0);
    EXPECT_EQ(bothModes(prog([](MethodBuilder &m, Label l) {
        m.ifle(l);
    }), 0), 1);
}

TEST(Branches, RefComparisons)
{
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.locals(2);
        Label eq = m.newLabel();
        m.iconst(3).newArray(ArrayKind::Int).astore(1);
        m.aload(1).aload(1).ifAcmpeq(eq);
        m.iconst(0).ireturn();
        m.bind(eq);
        m.iconst(1).ireturn();
    }), 1);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        Label ne = m.newLabel();
        m.iconst(3).newArray(ArrayKind::Int);
        m.iconst(3).newArray(ArrayKind::Int);
        m.ifAcmpne(ne);
        m.iconst(0).ireturn();
        m.bind(ne);
        m.iconst(1).ireturn();
    }), 1);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        Label null_l = m.newLabel();
        m.aconstNull().ifnull(null_l);
        m.iconst(0).ireturn();
        m.bind(null_l);
        m.iconst(1).ireturn();
    }), 1);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        Label nn = m.newLabel();
        m.iconst(1).newArray(ArrayKind::Byte).ifnonnull(nn);
        m.iconst(0).ireturn();
        m.bind(nn);
        m.iconst(1).ireturn();
    }), 1);
}

TEST(Switches, TableSwitchDispatch)
{
    auto prog = [](MethodBuilder &m) {
        Label c0 = m.newLabel(), c1 = m.newLabel(), c2 = m.newLabel();
        Label d = m.newLabel();
        m.iload(0);
        m.tableSwitch(5, {c0, c1, c2}, d);
        m.bind(c0);
        m.iconst(100).ireturn();
        m.bind(c1);
        m.iconst(200).ireturn();
        m.bind(c2);
        m.iconst(300).ireturn();
        m.bind(d);
        m.iconst(-1).ireturn();
    };
    EXPECT_EQ(bothModes(prog, 5), 100);
    EXPECT_EQ(bothModes(prog, 6), 200);
    EXPECT_EQ(bothModes(prog, 7), 300);
    EXPECT_EQ(bothModes(prog, 4), -1);
    EXPECT_EQ(bothModes(prog, 8), -1);
    EXPECT_EQ(bothModes(prog, -1000000), -1);
}

TEST(Switches, LookupSwitchDispatch)
{
    auto prog = [](MethodBuilder &m) {
        Label a = m.newLabel(), b = m.newLabel(), d = m.newLabel();
        m.iload(0);
        m.lookupSwitch({{-5, a}, {1000, b}}, d);
        m.bind(a);
        m.iconst(11).ireturn();
        m.bind(b);
        m.iconst(22).ireturn();
        m.bind(d);
        m.iconst(33).ireturn();
    };
    EXPECT_EQ(bothModes(prog, -5), 11);
    EXPECT_EQ(bothModes(prog, 1000), 22);
    EXPECT_EQ(bothModes(prog, 0), 33);
}

TEST(Arrays, IntArrayReadWrite)
{
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.locals(2);
        m.iconst(10).newArray(ArrayKind::Int).astore(1);
        m.aload(1).iconst(3).iconst(777).iastore();
        m.aload(1).iconst(3).iaload().ireturn();
    }), 777);
}

TEST(Arrays, ByteArraySignExtends)
{
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.locals(2);
        m.iconst(4).newArray(ArrayKind::Byte).astore(1);
        m.aload(1).iconst(0).iconst(0xff).bastore();
        m.aload(1).iconst(0).baload().ireturn();
    }), -1);
}

TEST(Arrays, CharArrayZeroExtends)
{
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.locals(2);
        m.iconst(4).newArray(ArrayKind::Char).astore(1);
        m.aload(1).iconst(1).iconst(0xffff).castore();
        m.aload(1).iconst(1).caload().ireturn();
    }), 0xffff);
}

TEST(Arrays, FloatArray)
{
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.locals(2);
        m.iconst(2).newArray(ArrayKind::Float).astore(1);
        m.aload(1).iconst(0).fconst(2.5f).fastore();
        m.aload(1).iconst(0).faload().fconst(4.0f).fmul().f2i()
            .ireturn();
    }), 10);
}

TEST(Arrays, RefArrayRoundTrip)
{
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.locals(3);
        m.iconst(2).newArray(ArrayKind::Ref).astore(1);
        m.iconst(5).newArray(ArrayKind::Int).astore(2);
        m.aload(2).iconst(4).iconst(99).iastore();
        m.aload(1).iconst(1).aload(2).aastore();
        m.aload(1).iconst(1).aaload().iconst(4).iaload().ireturn();
    }), 99);
}

TEST(Arrays, ArrayLength)
{
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.iload(0).newArray(ArrayKind::Char).arrayLength().ireturn();
    }, 37), 37);
}

TEST(Strings, LiteralIsCharArray)
{
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.ldcStr("hi!").arrayLength().ireturn();
    }), 3);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.ldcStr("hi!").iconst(0).caload().ireturn();
    }), 'h');
}

TEST(Intrinsics, SqrtSinCos)
{
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.fconst(144.0f).intrinsic(IntrinsicId::FSqrt).f2i().ireturn();
    }), 12);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.fconst(0.0f).intrinsic(IntrinsicId::FSin).f2i().ireturn();
    }), 0);
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.fconst(0.0f).intrinsic(IntrinsicId::FCos).f2i().ireturn();
    }), 1);
}

TEST(Intrinsics, ArrayCopy)
{
    EXPECT_EQ(bothModes([](MethodBuilder &m) {
        m.locals(3);
        m.iconst(8).newArray(ArrayKind::Int).astore(1);
        m.iconst(8).newArray(ArrayKind::Int).astore(2);
        m.aload(1).iconst(2).iconst(55).iastore();
        m.aload(1).iconst(0).aload(2).iconst(4).iconst(4)
            .intrinsic(IntrinsicId::ArrayCopy);
        m.aload(2).iconst(6).iaload().ireturn();
    }), 55);
}

TEST(Output, PrintIntrinsicsAccumulate)
{
    const Program prog = test::makeProgram([](MethodBuilder &m) {
        m.iconst('o').intrinsic(IntrinsicId::PrintChar);
        m.iconst('k').intrinsic(IntrinsicId::PrintChar);
        m.iconst(42).intrinsic(IntrinsicId::PrintInt);
        m.iconst(0).ireturn();
    });
    const RunResult r = test::runProgram(prog, 0);
    EXPECT_EQ(r.output, "ok42\n");
}

} // namespace
} // namespace jrs
