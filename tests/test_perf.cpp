/**
 * @file
 * Perf-attribution contract tests (obs/perf.h + arch/outcome.h):
 *
 *  - Conservation: per-method CPI components sum exactly to
 *    PipelineSim::cycles(), and attributed access/miss/mispredict
 *    counts sum to the model's own aggregate statistics bit-for-bit
 *    (including the unattributed bucket), per workload and mode.
 *  - Non-perturbation: a model with a listener attached produces
 *    bit-identical timing to a bare one, and a sweep with a perf
 *    group observer produces bit-identical metrics.
 *  - IntervalTimeline reproduces TimeSeriesCacheSink's windowed
 *    curves exactly (the Figure 6 port).
 *  - The trace cache's .methods sidecar round-trips MethodMaps to
 *    later processes.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "arch/cache/time_series.h"
#include "arch/outcome.h"
#include "arch/pipeline/pipeline.h"
#include "harness/experiment.h"
#include "isa/trace_buffer.h"
#include "obs/perf.h"
#include "sweep/perf_observer.h"
#include "sweep/sweep.h"
#include "vm/engine/policy.h"
#include "workloads/workload.h"

namespace jrs {
namespace {

/** Unique-per-test temp dir, removed at scope exit. */
struct TempDir {
    explicit TempDir(const std::string &leaf)
        : path(std::string(::testing::TempDir()) + leaf)
    {
        std::filesystem::remove_all(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }
    std::string path;
};

std::shared_ptr<CompilationPolicy>
policyFor(const std::string &mode)
{
    if (mode == "interp")
        return std::make_shared<NeverCompilePolicy>();
    if (mode == "jit")
        return std::make_shared<AlwaysCompilePolicy>();
    return std::make_shared<CounterPolicy>(8);
}

/** Record one tiny run; every test replays offline from here. */
RecordedRun
recordTiny(const char *workload, const std::string &mode)
{
    const WorkloadInfo *w = findWorkload(workload);
    EXPECT_NE(w, nullptr) << workload;
    RunSpec s;
    s.workload = w;
    s.arg = w->tinyArg;
    s.policy = policyFor(mode);
    return recordWorkload(s);
}

std::size_t
idx(PerfKind k)
{
    return static_cast<std::size_t>(k);
}

/** Sum of the per-method cells, unattributed bucket included. */
obs::PerfCell
methodSum(const obs::PerfAttribution &perf)
{
    obs::PerfCell sum;
    for (std::size_t row = 0; row <= perf.map().rows(); ++row)
        sum.merge(perf.methodCell(row));
    return sum;
}

/** The workload x mode matrix every conservation test runs over. */
const std::vector<std::pair<const char *, const char *>> kMatrix = {
    {"hello", "interp"},  {"hello", "jit"},    {"hello", "counter"},
    {"compress", "interp"}, {"compress", "jit"},
    {"db", "jit"},        {"db", "counter"},
};

TEST(Perf, CpiStackConservesPipelineCycles)
{
    for (const auto &[workload, mode] : kMatrix) {
        SCOPED_TRACE(std::string(workload) + "/" + mode);
        const RecordedRun rec = recordTiny(workload, mode);
        ASSERT_NE(rec.methods, nullptr);
        obs::AttributedPipeline sink(PipelineConfig{}, rec.methods);
        rec.trace->replay(sink);
        const obs::PerfAttribution &perf = sink.perf();
        const PipelineSim &pipe = sink.pipeline();

        // Whole-run CPI stack == the model's cycle count, exactly.
        EXPECT_EQ(perf.totals().cycles(), pipe.cycles());
        EXPECT_EQ(perf.totalEvents(), pipe.instructions());

        // Per-method components sum to the totals, component by
        // component (so also to cycles()).
        const obs::PerfCell sum = methodSum(perf);
        EXPECT_EQ(sum.insts, perf.totals().insts);
        for (std::size_t c = 0; c < kNumCpiComponents; ++c)
            EXPECT_EQ(sum.cpi[c], perf.totals().cpi[c])
                << cpiComponentName(static_cast<CpiComponent>(c));
    }
}

TEST(Perf, OutcomeCountsMatchPipelineAggregates)
{
    for (const auto &[workload, mode] : kMatrix) {
        SCOPED_TRACE(std::string(workload) + "/" + mode);
        const RecordedRun rec = recordTiny(workload, mode);
        obs::AttributedPipeline sink(PipelineConfig{}, rec.methods);
        rec.trace->replay(sink);
        const obs::PerfCell t = methodSum(sink.perf());
        const PipelineSim &p = sink.pipeline();

        EXPECT_EQ(t.access[idx(PerfKind::ICacheFetch)],
                  p.icache().stats().reads);
        EXPECT_EQ(t.bad[idx(PerfKind::ICacheFetch)],
                  p.icache().stats().readMisses);
        EXPECT_EQ(t.access[idx(PerfKind::DCacheLoad)],
                  p.dcache().stats().reads);
        EXPECT_EQ(t.bad[idx(PerfKind::DCacheLoad)],
                  p.dcache().stats().readMisses);
        EXPECT_EQ(t.access[idx(PerfKind::DCacheStore)],
                  p.dcache().stats().writes);
        EXPECT_EQ(t.bad[idx(PerfKind::DCacheStore)],
                  p.dcache().stats().writeMisses);
        EXPECT_EQ(t.access[idx(PerfKind::CondBranch)],
                  p.condBranches());
        EXPECT_EQ(t.bad[idx(PerfKind::CondBranch)],
                  p.condMispredicts());
        EXPECT_EQ(t.access[idx(PerfKind::IndirectTarget)],
                  p.indirects());
        EXPECT_EQ(t.bad[idx(PerfKind::IndirectTarget)],
                  p.indirectMispredicts());
    }
}

TEST(Perf, CacheOutcomesMatchCacheSinkStats)
{
    const RecordedRun rec = recordTiny("compress", "jit");
    const CacheConfig icfg{8 * 1024, 32, 2, true};
    const CacheConfig dcfg{8 * 1024, 16, 1, true};
    obs::AttributedCaches sink(icfg, dcfg, rec.methods);
    rec.trace->replay(sink);
    const obs::PerfCell t = methodSum(sink.perf());
    const CacheSink &c = sink.caches();

    EXPECT_EQ(t.access[idx(PerfKind::ICacheFetch)],
              c.icache().stats().reads);
    EXPECT_EQ(t.bad[idx(PerfKind::ICacheFetch)],
              c.icache().stats().readMisses);
    EXPECT_EQ(t.access[idx(PerfKind::DCacheLoad)],
              c.dcache().stats().reads);
    EXPECT_EQ(t.bad[idx(PerfKind::DCacheLoad)],
              c.dcache().stats().readMisses);
    EXPECT_EQ(t.access[idx(PerfKind::DCacheStore)],
              c.dcache().stats().writes);
    EXPECT_EQ(t.bad[idx(PerfKind::DCacheStore)],
              c.dcache().stats().writeMisses);
    // A bare cache model charges no cycles.
    EXPECT_EQ(t.cycles(), 0u);
}

TEST(Perf, ListenerDoesNotPerturbPipelineTiming)
{
    const RecordedRun rec = recordTiny("db", "jit");
    PipelineSim bare((PipelineConfig()));
    rec.trace->replay(bare);
    obs::AttributedPipeline observed(PipelineConfig{}, rec.methods);
    rec.trace->replay(observed);

    EXPECT_EQ(observed.pipeline().cycles(), bare.cycles());
    EXPECT_EQ(observed.pipeline().instructions(),
              bare.instructions());
    EXPECT_EQ(observed.pipeline().mispredicts(), bare.mispredicts());
    EXPECT_EQ(observed.pipeline().icache().stats().misses(),
              bare.icache().stats().misses());
    EXPECT_EQ(observed.pipeline().dcache().stats().misses(),
              bare.dcache().stats().misses());
}

TEST(Perf, TimelineMatchesTimeSeriesCacheSink)
{
    const RecordedRun rec = recordTiny("db", "jit");
    const CacheConfig icfg{64 * 1024, 32, 2, true};
    const CacheConfig dcfg{64 * 1024, 32, 4, true};
    // Exercise a partial final window, an exact-divisor window, and a
    // window larger than the stream.
    const std::uint64_t total = rec.trace->size();
    ASSERT_GT(total, 2u);
    for (const std::uint64_t window :
         {total / 7 + 1, total / 2, total, total * 2}) {
        SCOPED_TRACE("window=" + std::to_string(window));
        TimeSeriesCacheSink legacy(icfg, dcfg, window);
        rec.trace->replay(legacy);

        obs::PerfOptions popt;
        popt.timelineWindow = window;
        obs::AttributedCaches ported(icfg, dcfg, rec.methods, popt);
        rec.trace->replay(ported);

        const auto &got = ported.perf().timeline();
        const auto &want = legacy.samples();
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].bad[idx(PerfKind::ICacheFetch)],
                      want[i].iMisses);
            EXPECT_EQ(got[i].bad[idx(PerfKind::DCacheLoad)]
                          + got[i].bad[idx(PerfKind::DCacheStore)],
                      want[i].dMisses);
            EXPECT_EQ(got[i].bad[idx(PerfKind::DCacheStore)],
                      want[i].dWriteMisses);
            EXPECT_EQ(got[i].translateEvents,
                      want[i].translateEvents);
        }
    }
}

TEST(Perf, OpcodeAttributionCoversInterpretedRun)
{
    const WorkloadInfo *w = findWorkload("hello");
    ASSERT_NE(w, nullptr);
    const Program prog = w->build();
    RunSpec s;
    s.workload = w;
    s.arg = w->tinyArg;
    s.policy = policyFor("interp");
    const RecordedRun rec = recordWorkload(s);

    obs::PerfOptions popt;
    popt.program = &prog;
    obs::AttributedPipeline sink(PipelineConfig{}, rec.methods, popt);
    rec.trace->replay(sink);
    const obs::PerfAttribution &perf = sink.perf();
    ASSERT_TRUE(perf.hasOpcodes());

    // A pure-interp run must attribute a healthy share of its events
    // to decoded opcodes, and opcode insts can never exceed totals.
    std::uint64_t opInsts = 0;
    std::uint64_t opCycles = 0;
    for (std::size_t o = 0; o < kNumOpcodes; ++o) {
        opInsts += perf.opcodeCell(static_cast<Op>(o)).insts;
        opCycles += perf.opcodeCell(static_cast<Op>(o)).cycles();
    }
    EXPECT_GT(opInsts, 0u);
    EXPECT_LE(opInsts, perf.totals().insts);
    EXPECT_LE(opCycles, perf.totals().cycles());

    // The annotate view has sites for at least one method, and the
    // per-site tables agree with the opcode totals.
    EXPECT_GT(perf.opcodeTable(5).numRows(), 0u);
    bool annotated = false;
    for (std::size_t row = 0; row < perf.map().rows(); ++row) {
        if (perf.annotateTable(perf.map().name(static_cast<int>(row)))
                .numRows()
            > 0) {
            annotated = true;
            break;
        }
    }
    EXPECT_TRUE(annotated);
}

TEST(Perf, SweepGroupObserverKeepsMetricsBitIdentical)
{
    const WorkloadInfo *w = findWorkload("hello");
    ASSERT_NE(w, nullptr);
    const auto buildGrid = [&] {
        std::vector<sweep::SweepPoint> grid;
        for (const std::uint32_t width : {2u, 4u}) {
            PipelineConfig cfg;
            cfg.issueWidth = width;
            grid.push_back(sweep::makePoint<PipelineSim>(
                "w" + std::to_string(width),
                sweep::traceKey("hello", sweep::ExecMode::jit(),
                                w->tinyArg),
                [cfg] { return std::make_unique<PipelineSim>(cfg); },
                [](PipelineSim &sim, const RecordedRun &) {
                    return std::vector<sweep::Metric>{
                        {"cycles",
                         static_cast<double>(sim.cycles())},
                        {"ipc", sim.ipc()},
                    };
                }));
        }
        return grid;
    };

    sweep::SweepEngine plain((sweep::SweepOptions()));
    const sweep::SweepResult without = plain.run(buildGrid());

    obs::PerfReportSet reports;
    sweep::SweepOptions opts;
    sweep::attachPerfObserver(opts, reports);
    sweep::SweepEngine observing(opts);
    const sweep::SweepResult with = observing.run(buildGrid());

    ASSERT_TRUE(without.allOk());
    ASSERT_TRUE(with.allOk());
    ASSERT_EQ(without.points.size(), with.points.size());
    for (std::size_t i = 0; i < with.points.size(); ++i) {
        EXPECT_EQ(with.points[i].metric("cycles"),
                  without.points[i].metric("cycles"));
        EXPECT_EQ(with.points[i].metric("ipc"),
                  without.points[i].metric("ipc"));
    }
    // One trace group -> one collected report, and its JSON carries
    // the stable schema.
    EXPECT_EQ(reports.size(), 1u);
    EXPECT_NE(reports.toJson().find("\"jrs-perf-report-v1\""),
              std::string::npos);
}

TEST(Perf, ReportSetOverwritesDuplicateLabels)
{
    const RecordedRun rec = recordTiny("hello", "jit");
    obs::AttributedPipeline sink(PipelineConfig{}, rec.methods);
    rec.trace->replay(sink);

    obs::PerfReportSet reports;
    reports.add("run", sink.perf());
    reports.add("run", sink.perf());
    EXPECT_EQ(reports.size(), 1u);
}

TEST(Perf, MethodsSidecarRoundTripsThroughDiskCache)
{
    TempDir dir("jrs_perf_methods_sidecar");
    const WorkloadInfo *w = findWorkload("hello");
    ASSERT_NE(w, nullptr);
    const sweep::TraceKey key =
        sweep::traceKey("hello", sweep::ExecMode::jit(), w->tinyArg);

    sweep::TraceCache writer(dir.path);
    const auto recorded = writer.get(key);
    ASSERT_NE(recorded->methods, nullptr);
    EXPECT_GT(recorded->methods->rows(), 0u);

    // A fresh cache on the same directory stands in for a later
    // process: the sidecar must restore an identical map.
    sweep::TraceCache reader(dir.path);
    const auto loaded = reader.get(key);
    EXPECT_EQ(reader.stats().diskLoads, 1u);
    ASSERT_NE(loaded->methods, nullptr);

    std::vector<std::tuple<SimAddr, SimAddr, std::string>> a, b;
    recorded->methods->forEachRange(
        [&](SimAddr lo, SimAddr hi, const std::string &name) {
            a.emplace_back(lo, hi, name);
        });
    loaded->methods->forEachRange(
        [&](SimAddr lo, SimAddr hi, const std::string &name) {
            b.emplace_back(lo, hi, name);
        });
    EXPECT_EQ(a, b);

    // Attribution through the restored map matches the original.
    obs::AttributedPipeline viaOriginal(PipelineConfig{},
                                        recorded->methods);
    recorded->trace->replay(viaOriginal);
    obs::AttributedPipeline viaSidecar(PipelineConfig{},
                                       loaded->methods);
    loaded->trace->replay(viaSidecar);
    const obs::PerfCell so = methodSum(viaOriginal.perf());
    const obs::PerfCell ss = methodSum(viaSidecar.perf());
    EXPECT_EQ(so.insts, ss.insts);
    EXPECT_EQ(so.cycles(), ss.cycles());
    // Row indices may differ (the sidecar restores ranges in address
    // order), so compare per-method cells by name.
    const auto byName = [](const obs::PerfAttribution &perf) {
        std::vector<std::pair<std::string, std::uint64_t>> out;
        for (std::size_t row = 0; row < perf.map().rows(); ++row) {
            out.emplace_back(
                perf.map().name(static_cast<int>(row)),
                perf.methodCell(row).cycles());
        }
        std::sort(out.begin(), out.end());
        return out;
    };
    EXPECT_EQ(byName(viaOriginal.perf()), byName(viaSidecar.perf()));
    EXPECT_EQ(viaOriginal.perf()
                  .methodCell(viaOriginal.perf().map().rows())
                  .cycles(),
              viaSidecar.perf()
                  .methodCell(viaSidecar.perf().map().rows())
                  .cycles());
}

} // namespace
} // namespace jrs
