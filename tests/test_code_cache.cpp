/**
 * @file
 * jrs code-cache management test suite (ctest label "jit").
 *
 * Pins the bounded-code-cache contracts:
 *  - allocation: 64-byte extents, first-fit free-list reuse,
 *    coalescing release, cursor retreat back to zero;
 *  - install/uninstall semantics: reinstall after uninstall is legal,
 *    double-compile of a live method stays a VmError, unbounded
 *    segment overflow is a hard VmError while bounded overflow evicts;
 *  - victim selection: FIFO by install order, LRU by lookup() tick,
 *    cost by the retranslation-cost callback — all deterministic;
 *  - the default (unlimited) configuration is bit-identical to the
 *    historical unmanaged cache, stream and accounting alike;
 *  - eviction preserves program semantics (same VmStateDigest) and is
 *    deterministic across repeated runs, record/replay, and sweep
 *    --jobs N;
 *  - counter-policy re-arm: an evicted method must earn retranslation
 *    with fresh post-eviction invocations, falling back to the
 *    interpreter meanwhile;
 *  - the oracle policy ignores jit_cost for methods with no JIT-run
 *    evidence (regression for the zero-cost-always-wins bug).
 */
#include <gtest/gtest.h>

#include <memory>

#include "check/digest.h"
#include "check/invariants.h"
#include "harness/experiment.h"
#include "obs/obs.h"
#include "sweep/grids.h"
#include "sweep/sweep.h"
#include "vm_test_util.h"
#include "workloads/workload.h"

namespace jrs {
namespace {

// ---------------------------------------------------------------------
// Unit-level helpers
// ---------------------------------------------------------------------

/** Synthetic NativeMethod of @p insts instructions (4 bytes each). */
std::unique_ptr<NativeMethod>
makeNm(MethodId id, std::size_t insts)
{
    auto nm = std::make_unique<NativeMethod>();
    nm->id = id;
    nm->code.resize(insts);
    return nm;
}

/** Simulated code-cache offset of an installed method. */
std::size_t
offsetOf(const NativeMethod *nm)
{
    return static_cast<std::size_t>(nm->codeBase - seg::kCodeCache);
}

/** Order-sensitive FNV-1a digest over every TraceEvent field. */
class DigestSink : public TraceSink {
  public:
    void onEvent(const TraceEvent &ev) override {
        put(ev.pc);
        put(ev.mem);
        put(ev.target);
        put(static_cast<std::uint64_t>(ev.kind));
        put(static_cast<std::uint64_t>(ev.phase));
        put(ev.taken ? 1 : 0);
        put(ev.memSize);
        put(ev.rd);
        put(ev.rs1);
        put(ev.rs2);
    }
    std::uint64_t digest() const { return h_; }

  private:
    void put(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h_ ^= (v >> (8 * i)) & 0xff;
            h_ *= 1099511628211ull;
        }
    }
    std::uint64_t h_ = 14695981039346656037ull;
};

/** Bounded-cache RunSpec for a registered workload (tiny input). */
RunSpec
boundedSpec(const char *workload, std::size_t capacity,
            EvictionPolicy policy,
            std::shared_ptr<CompilationPolicy> comp = nullptr)
{
    RunSpec spec;
    spec.workload = findWorkload(workload);
    spec.arg = spec.workload->tinyArg;
    spec.policy = std::move(comp);
    spec.codeCache.capacityBytes = capacity;
    spec.codeCache.policy = policy;
    return spec;
}

// ---------------------------------------------------------------------
// Allocation mechanics
// ---------------------------------------------------------------------

TEST(CodeCacheAlloc, BumpAllocationIsAlignedAndAccounted)
{
    CodeCache cache;
    const NativeMethod *a = cache.install(makeNm(1, 16)); // 64B exact
    const NativeMethod *b = cache.install(makeNm(2, 17)); // -> 128B
    const NativeMethod *c = cache.install(makeNm(3, 1));  // -> 64B
    EXPECT_EQ(offsetOf(a), 0u);
    EXPECT_EQ(offsetOf(b), 64u);
    EXPECT_EQ(offsetOf(c), 192u);
    EXPECT_EQ(cache.codeBytes(), 256u);
    EXPECT_EQ(cache.cursorBytes(), 256u);
    EXPECT_EQ(cache.freeBytes(), 0u);
    EXPECT_EQ(cache.numMethods(), 3u);
}

TEST(CodeCacheAlloc, UninstallFeedsFirstFitReuse)
{
    CodeCache cache;
    cache.install(makeNm(1, 16));
    const NativeMethod *b = cache.install(makeNm(2, 32)); // 128B
    cache.install(makeNm(3, 16));
    const std::size_t hole = offsetOf(b);

    ASSERT_TRUE(cache.uninstall(2));
    EXPECT_EQ(cache.lookup(2), nullptr);
    EXPECT_EQ(cache.freeExtents(), 1u);
    EXPECT_EQ(cache.freeBytes(), 128u);
    EXPECT_EQ(cache.codeBytes(), 128u);
    EXPECT_EQ(cache.cursorBytes(), 256u); // high-water unchanged
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.bytesEvicted(), 128u);

    // A smaller method lands at the hole's low end; the remainder
    // stays free.
    const NativeMethod *d = cache.install(makeNm(4, 16));
    EXPECT_EQ(offsetOf(d), hole);
    EXPECT_EQ(cache.freeExtents(), 1u);
    EXPECT_EQ(cache.freeBytes(), 64u);
    EXPECT_EQ(cache.cursorBytes(), 256u); // reuse, not growth
}

TEST(CodeCacheAlloc, ReleaseCoalescesAndCursorRetreats)
{
    CodeCache cache;
    cache.install(makeNm(1, 16));
    cache.install(makeNm(2, 16));
    cache.install(makeNm(3, 16));
    EXPECT_EQ(cache.cursorBytes(), 192u);

    // Freeing two adjacent interior extents coalesces them into one.
    cache.uninstall(1);
    cache.uninstall(2);
    EXPECT_EQ(cache.freeExtents(), 1u);
    EXPECT_EQ(cache.freeBytes(), 128u);

    // Freeing the topmost method cascades the cursor through the
    // coalesced run back to zero: an empty cache is a fresh cache.
    cache.uninstall(3);
    EXPECT_EQ(cache.freeExtents(), 0u);
    EXPECT_EQ(cache.freeBytes(), 0u);
    EXPECT_EQ(cache.cursorBytes(), 0u);
    EXPECT_EQ(cache.codeBytes(), 0u);
    EXPECT_EQ(cache.numMethods(), 0u);

    const NativeMethod *again = cache.install(makeNm(4, 16));
    EXPECT_EQ(offsetOf(again), 0u);
}

TEST(CodeCacheAlloc, LookupCountsHitsAndMisses)
{
    CodeCache cache;
    cache.install(makeNm(7, 16));
    EXPECT_NE(cache.lookup(7), nullptr);
    EXPECT_EQ(cache.lookup(8), nullptr);
    EXPECT_NE(cache.lookup(7), nullptr);
    EXPECT_EQ(cache.lookups(), 3u);
    EXPECT_EQ(cache.lookupMisses(), 1u);
}

TEST(CodeCacheAlloc, BestFitPicksSmallestHoleFirstFitLowest)
{
    // Identical hole pattern — a 128B hole at 64 below a 64B hole at
    // 256 — served under both strategies.
    for (const AllocStrategy s :
         {AllocStrategy::kFirstFit, AllocStrategy::kBestFit}) {
        ExtentAllocator a(1 << 20, s);
        EXPECT_EQ(a.allocate(64), 0u);
        EXPECT_EQ(a.allocate(128), 64u);
        EXPECT_EQ(a.allocate(64), 192u);
        EXPECT_EQ(a.allocate(64), 256u);
        EXPECT_EQ(a.allocate(64), 320u); // top guard: no retreat
        a.release(64, 128);
        a.release(256, 64);
        const std::size_t got = a.allocate(64);
        if (s == AllocStrategy::kFirstFit)
            EXPECT_EQ(got, 64u); // lowest address, splits the hole
        else
            EXPECT_EQ(got, 256u); // exact fit wins over lower address
    }
}

TEST(CodeCacheAlloc, BestFitCacheReusesExactHole)
{
    CodeCacheConfig cfg;
    cfg.strategy = AllocStrategy::kBestFit;
    CodeCache cache(cfg);
    cache.install(makeNm(1, 16)); // 64B  @0
    cache.install(makeNm(2, 32)); // 128B @64
    cache.install(makeNm(3, 16)); // 64B  @192
    cache.install(makeNm(4, 16)); // 64B  @256
    cache.install(makeNm(5, 16)); // 64B  @320 guard
    cache.uninstall(2);
    cache.uninstall(4);

    // First-fit would split the 128B hole at 64; best-fit lands in the
    // exact 64B hole at 256 and leaves the big hole intact.
    const NativeMethod *m = cache.install(makeNm(6, 16));
    EXPECT_EQ(offsetOf(m), 256u);
    EXPECT_EQ(cache.freeExtents(), 1u);
    EXPECT_EQ(cache.freeBytes(), 128u);
}

TEST(CodeCacheAlloc, AllocStrategyNamesRoundTrip)
{
    EXPECT_STREQ(allocStrategyName(AllocStrategy::kFirstFit), "first");
    EXPECT_STREQ(allocStrategyName(AllocStrategy::kBestFit), "best");
    AllocStrategy out = AllocStrategy::kBestFit;
    for (const char *alias : {"first", "firstfit", "first-fit"}) {
        out = AllocStrategy::kBestFit;
        ASSERT_TRUE(parseAllocStrategy(alias, &out)) << alias;
        EXPECT_EQ(out, AllocStrategy::kFirstFit);
    }
    for (const char *alias : {"best", "bestfit", "best-fit"}) {
        out = AllocStrategy::kFirstFit;
        ASSERT_TRUE(parseAllocStrategy(alias, &out)) << alias;
        EXPECT_EQ(out, AllocStrategy::kBestFit);
    }
    EXPECT_FALSE(parseAllocStrategy("worst", &out));
}

TEST(CodeCacheAlloc, FragmentationCountsExtentsPerFreeKiB)
{
    ExtentAllocator a(1 << 20, AllocStrategy::kFirstFit);
    EXPECT_EQ(a.fragmentation(), 0.0);
    a.allocate(1024);
    a.allocate(1024);
    a.allocate(1024);
    a.allocate(64); // top guard
    a.release(0, 1024);
    a.release(2048, 1024);
    // 2 KiB free shattered across two extents: 1.0 extents per KiB.
    EXPECT_DOUBLE_EQ(a.fragmentation(), 1.0);
    // Freeing the middle coalesces all three into one 3 KiB extent.
    a.release(1024, 1024);
    EXPECT_EQ(a.freeExtents(), 1u);
    EXPECT_DOUBLE_EQ(a.fragmentation(), 1.0 / 3.0);
}

// ---------------------------------------------------------------------
// Install/uninstall semantics and overflow
// ---------------------------------------------------------------------

TEST(CodeCacheSemantics, ReinstallAfterUninstallLegalDoubleThrows)
{
    CodeCache cache;
    cache.install(makeNm(5, 16));
    // Double-compile of a live method is an engine bug.
    EXPECT_THROW(cache.install(makeNm(5, 16)), VmError);
    // ...but reinstall after an uninstall is the retranslation path.
    ASSERT_TRUE(cache.uninstall(5));
    EXPECT_FALSE(cache.uninstall(5)); // already gone
    const NativeMethod *again = cache.install(makeNm(5, 16));
    ASSERT_NE(again, nullptr);
    EXPECT_EQ(cache.lookup(5), again);
}

TEST(CodeCacheSemantics, UnboundedSegmentOverflowThrows)
{
    CodeCacheConfig cfg;
    cfg.segmentLimit = 128;
    CodeCache cache(cfg);
    cache.install(makeNm(1, 16));
    cache.install(makeNm(2, 16));
    EXPECT_THROW(cache.install(makeNm(3, 16)), VmError);
}

TEST(CodeCacheSemantics, BoundedSegmentLimitEvictsInsteadOfThrowing)
{
    CodeCacheConfig cfg;
    cfg.capacityBytes = 1 << 20; // far beyond the shrunken segment
    cfg.segmentLimit = 128;
    CodeCache cache(cfg);
    cache.install(makeNm(1, 16));
    cache.install(makeNm(2, 16));
    const NativeMethod *c = cache.install(makeNm(3, 16));
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.lookup(1), nullptr); // FIFO victim
    EXPECT_NE(cache.lookup(2), nullptr);
}

TEST(CodeCacheSemantics, MethodLargerThanCapacityIsRejected)
{
    CodeCacheConfig cfg;
    cfg.capacityBytes = 128;
    CodeCache cache(cfg);
    cache.install(makeNm(1, 16));
    // 256B of code cannot fit a 128B cache even after evicting
    // everything: install declines (nullptr), existing methods are
    // the collateral of the attempt's eviction loop.
    EXPECT_EQ(cache.install(makeNm(2, 64)), nullptr);
    EXPECT_EQ(cache.lookup(2), nullptr);
}

// ---------------------------------------------------------------------
// Victim selection
// ---------------------------------------------------------------------

CodeCache
boundedCache(EvictionPolicy policy, std::size_t capacity = 128)
{
    CodeCacheConfig cfg;
    cfg.capacityBytes = capacity;
    cfg.policy = policy;
    return CodeCache(cfg);
}

TEST(CodeCacheEviction, FifoEvictsOldestInstall)
{
    CodeCache cache = boundedCache(EvictionPolicy::kFifo);
    cache.install(makeNm(1, 16));
    cache.install(makeNm(2, 16));
    cache.install(makeNm(3, 16)); // full: evicts 1
    EXPECT_EQ(cache.lookup(1), nullptr);
    EXPECT_NE(cache.lookup(2), nullptr);
    EXPECT_NE(cache.lookup(3), nullptr);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.bytesEvicted(), 64u);
}

TEST(CodeCacheEviction, LruEvictsLeastRecentlyDispatched)
{
    CodeCache cache = boundedCache(EvictionPolicy::kLru);
    cache.install(makeNm(1, 16));
    cache.install(makeNm(2, 16));
    EXPECT_NE(cache.lookup(1), nullptr); // 1 is now the hotter one
    cache.install(makeNm(3, 16));        // evicts 2, not 1
    EXPECT_NE(cache.lookup(1), nullptr);
    EXPECT_EQ(cache.lookup(2), nullptr);
}

TEST(CodeCacheEviction, CostEvictsCheapestToRetranslate)
{
    CodeCache cache = boundedCache(EvictionPolicy::kCost);
    cache.setRetranslateCost([](MethodId id) -> std::uint64_t {
        return id == 1 ? 1000 : 5; // method 2 is cheap to redo
    });
    cache.install(makeNm(1, 16));
    cache.install(makeNm(2, 16));
    cache.install(makeNm(3, 16)); // evicts 2
    EXPECT_NE(cache.lookup(1), nullptr);
    EXPECT_EQ(cache.lookup(2), nullptr);
}

TEST(CodeCacheEviction, CostPerByteDividesCostByExtentBytes)
{
    // m1: cost 300 over 64B  -> 300*4096/64  = 19200 per-byte key
    // m2: cost 1000 over 256B -> 1000*4096/256 = 16000 per-byte key
    // Plain cost evicts m1 (cheapest rebuild); cost-per-byte evicts m2
    // (least rebuild value per cache byte it occupies).
    for (const EvictionPolicy p :
         {EvictionPolicy::kCost, EvictionPolicy::kCostPerByte}) {
        CodeCache cache = boundedCache(p, 320);
        cache.setRetranslateCost([](MethodId id) -> std::uint64_t {
            return id == 1 ? 300 : 1000;
        });
        cache.install(makeNm(1, 16)); // 64B
        cache.install(makeNm(2, 64)); // 256B
        cache.install(makeNm(3, 16)); // overflow: one victim
        if (p == EvictionPolicy::kCost) {
            EXPECT_EQ(cache.lookup(1), nullptr);
            EXPECT_NE(cache.lookup(2), nullptr);
        } else {
            EXPECT_NE(cache.lookup(1), nullptr);
            EXPECT_EQ(cache.lookup(2), nullptr);
        }
        EXPECT_NE(cache.lookup(3), nullptr);
        EXPECT_EQ(cache.evictions(), 1u);
    }
}

TEST(CodeCacheEviction, HookSeesVictimBeforeRecycle)
{
    CodeCache cache = boundedCache(EvictionPolicy::kFifo);
    std::vector<MethodId> evicted;
    cache.setEvictionHook([&](const NativeMethod &nm) {
        evicted.push_back(nm.id);
    });
    cache.install(makeNm(1, 16));
    cache.install(makeNm(2, 16));
    cache.install(makeNm(3, 32)); // 128B: evicts both residents
    ASSERT_EQ(evicted.size(), 2u);
    EXPECT_EQ(evicted[0], 1u);
    EXPECT_EQ(evicted[1], 2u);
    EXPECT_EQ(cache.evictions(), 2u);
    EXPECT_EQ(cache.bytesEvicted(), 128u);
}

TEST(CodeCacheEviction, PolicyNamesRoundTrip)
{
    for (const EvictionPolicy p :
         {EvictionPolicy::kFifo, EvictionPolicy::kLru,
          EvictionPolicy::kCost, EvictionPolicy::kCostPerByte}) {
        EvictionPolicy back = EvictionPolicy::kFifo;
        ASSERT_TRUE(parseEvictionPolicy(evictionPolicyName(p), &back));
        EXPECT_EQ(back, p);
    }
    EvictionPolicy out;
    EXPECT_FALSE(parseEvictionPolicy("random", &out));
}

// ---------------------------------------------------------------------
// Engine integration: semantics, determinism, bit-identity
// ---------------------------------------------------------------------

TEST(CodeCacheEngine, EvictionPreservesSemantics)
{
    const WorkloadInfo *w = findWorkload("jack");
    const Program unlimited_prog = w->build();
    const Program bounded_prog = w->build();

    EngineConfig unlimited_cfg;
    ExecutionEngine unlimited(unlimited_prog, unlimited_cfg);
    const RunResult base = unlimited.run(w->tinyArg);
    ASSERT_TRUE(base.completed);
    EXPECT_EQ(base.codeCacheEvictions, 0u);
    EXPECT_EQ(base.retranslations, 0u);

    EngineConfig bounded_cfg;
    bounded_cfg.codeCache.capacityBytes = 1 << 10;
    ExecutionEngine bounded(bounded_prog, bounded_cfg);
    const RunResult res = bounded.run(w->tinyArg);
    ASSERT_TRUE(res.completed);
    EXPECT_GT(res.codeCacheEvictions, 0u);
    EXPECT_GT(res.codeCacheBytesEvicted, 0u);
    EXPECT_GT(res.retranslations, 0u);

    // Eviction changes what executes natively, never what the program
    // computes: the end-state digests are identical.
    const check::VmStateDigest a = check::captureDigest(unlimited, base);
    const check::VmStateDigest b = check::captureDigest(bounded, res);
    EXPECT_TRUE(a == b) << check::describeDigestDiff("unlimited", a,
                                                     "bounded", b);
}

TEST(CodeCacheEngine, BoundedRunsAreDeterministic)
{
    const RunSpec spec =
        boundedSpec("jack", 1 << 10, EvictionPolicy::kLru);
    const RecordedRun r1 = recordWorkload(spec);
    const RecordedRun r2 = recordWorkload(spec);
    ASSERT_TRUE(r1.result.completed);
    EXPECT_EQ(r1.result.totalEvents, r2.result.totalEvents);
    EXPECT_EQ(r1.result.codeCacheEvictions,
              r2.result.codeCacheEvictions);
    EXPECT_EQ(r1.result.retranslations, r2.result.retranslations);

    DigestSink d1, d2;
    r1.trace->replay(d1);
    r2.trace->replay(d2);
    EXPECT_EQ(d1.digest(), d2.digest());
}

TEST(CodeCacheEngine, HugeBoundIsBitIdenticalToUnlimited)
{
    // A capacity that never fires arms the managed path (bounded
    // checks, eviction plumbing) but must not perturb the stream by a
    // single bit relative to the unmanaged default.
    RunSpec unlimited;
    unlimited.workload = findWorkload("hello");
    unlimited.arg = unlimited.workload->tinyArg;
    RunSpec huge = unlimited;
    huge.codeCache.capacityBytes = 16 << 20;

    const RecordedRun a = recordWorkload(unlimited);
    const RecordedRun b = recordWorkload(huge);
    ASSERT_TRUE(a.result.completed);
    EXPECT_EQ(b.result.codeCacheEvictions, 0u);
    EXPECT_EQ(a.result.totalEvents, b.result.totalEvents);
    EXPECT_EQ(a.result.memory.codeCacheBytes,
              b.result.memory.codeCacheBytes);

    DigestSink da, db;
    a.trace->replay(da);
    b.trace->replay(db);
    EXPECT_EQ(da.digest(), db.digest());
}

TEST(CodeCacheEngine, BoundedStreamPassesInvariantLint)
{
    // Extent reuse relocates retranslated methods; every NativeExec
    // pc and code-cache access must still be segment-resident and
    // 4-byte aligned.
    const RecordedRun rec = recordWorkload(
        boundedSpec("hello", 1 << 10, EvictionPolicy::kFifo));
    ASSERT_TRUE(rec.result.completed);
    EXPECT_GT(rec.result.codeCacheEvictions, 0u);
    check::TraceInvariantChecker lint;
    rec.trace->replay(lint);
    EXPECT_TRUE(lint.ok()) << lint.report();
}

TEST(CodeCacheEngine, MisalignedCodeCachePcIsFlagged)
{
    check::TraceInvariantChecker lint;
    TraceEvent ev;
    ev.pc = seg::kCodeCache + 0x42; // not 4-byte aligned
    ev.kind = NKind::IntAlu;
    ev.phase = Phase::NativeExec;
    lint.onEvent(ev);
    EXPECT_FALSE(lint.ok());
    EXPECT_NE(lint.report().find("aligned"), std::string::npos);
}

TEST(CodeCacheEngine, RunMetricsArePublished)
{
    obs::metrics().reset();
    obs::setEnabled(true);
    const WorkloadInfo *w = findWorkload("hello");
    const Program prog = w->build();
    EngineConfig cfg;
    cfg.codeCache.capacityBytes = 1 << 10;
    ExecutionEngine engine(prog, cfg);
    const RunResult res = engine.run(w->tinyArg);
    obs::setEnabled(false);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(obs::metrics().counterValue("vm.code_cache.evictions"),
              res.codeCacheEvictions);
    EXPECT_EQ(
        obs::metrics().counterValue("vm.code_cache.bytes_evicted"),
        res.codeCacheBytesEvicted);
    EXPECT_EQ(
        obs::metrics().counterValue("vm.code_cache.retranslations"),
        res.retranslations);
    obs::metrics().reset();
}

// ---------------------------------------------------------------------
// Counter-policy re-arm
// ---------------------------------------------------------------------

/**
 * A program built to evict one hot method at a known point:
 *
 *   f       tiny, called 5x (compiles at call 3 under counter:3),
 *   fill0-7 bulky, each called 3x (each compiles, flooding the cache),
 *   f       called 4 more times.
 *
 * With a capacity the fillers overflow, FIFO evicts f (the oldest
 * install). Re-arm then dictates the tail: calls 6-7 interpret
 * (post-eviction counter at 1, 2), call 8 retranslates, 8-9 native.
 */
Program
rearmProgram()
{
    return test::makeProgramFull([](ProgramBuilder &pb) {
        ClassBuilder &t = pb.cls("T");
        {
            MethodBuilder &f =
                t.staticMethod("f", {VType::Int}, VType::Int);
            f.iload(0).iconst(1).iadd().ireturn();
        }
        for (int i = 0; i < 8; ++i) {
            MethodBuilder &fill = t.staticMethod(
                "fill" + std::to_string(i), {VType::Int}, VType::Int);
            fill.iload(0);
            for (int j = 0; j < 50; ++j)
                fill.iconst(j).iadd();
            fill.ireturn();
        }
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.locals(2);
        m.iload(0).istore(1);
        for (int c = 0; c < 5; ++c)
            m.iload(1).invokeStatic("T.f").istore(1);
        for (int i = 0; i < 8; ++i) {
            for (int c = 0; c < 3; ++c) {
                m.iload(1)
                    .invokeStatic("T.fill" + std::to_string(i))
                    .istore(1);
            }
        }
        for (int c = 0; c < 4; ++c)
            m.iload(1).invokeStatic("T.f").istore(1);
        m.iload(1).ireturn();
    });
}

TEST(CodeCacheRearm, EvictedMethodMustEarnRetranslation)
{
    const Program prog = rearmProgram();
    const MethodId f = prog.findMethod("T.f")->id;

    // Baseline: unlimited cache, f compiles once at its 3rd call and
    // stays native for the rest of the run.
    EngineConfig base_cfg;
    base_cfg.policy = std::make_shared<CounterPolicy>(3);
    ExecutionEngine base_engine(prog, base_cfg);
    const RunResult base = base_engine.run(1);
    ASSERT_TRUE(base.completed);
    EXPECT_EQ(base.codeCacheEvictions, 0u);
    EXPECT_EQ(base.retranslations, 0u);
    EXPECT_EQ(base.profiles.of(f).interpInvocations, 2u);
    EXPECT_EQ(base.profiles.of(f).nativeInvocations, 7u);

    // Bounded: the filler flood evicts f; the tail interprets f twice
    // (the re-armed counter at 1, 2) before retranslating at its 8th
    // call overall.
    EngineConfig cfg;
    cfg.policy = std::make_shared<CounterPolicy>(3);
    cfg.codeCache.capacityBytes = 2 << 10;
    ExecutionEngine engine(prog, cfg);
    const RunResult res = engine.run(1);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.exitValue, base.exitValue);
    EXPECT_GT(res.codeCacheEvictions, 0u);
    EXPECT_EQ(res.retranslations, 1u);
    const MethodProfile &fp = res.profiles.of(f);
    EXPECT_EQ(fp.invocations, 9u);
    EXPECT_EQ(fp.interpInvocations, 4u); // 2 pre-compile + 2 re-armed
    EXPECT_EQ(fp.nativeInvocations, 5u);
}

/**
 * A program whose compiled loop method is evicted while interpreted
 * frames of it are still live on the stack:
 *
 *   rec(n)  recurses to depth 0, then runs a 120-iteration loop whose
 *           body calls fill0-7; under counter:3 the 3rd recursive call
 *           compiles rec, so the two outermost frames stay interpreted
 *           while the inner frames run natively;
 *   fill0-7 bulky; each compiles during the inner frames' loop,
 *           flooding a small cache and evicting rec (oldest install).
 *
 * When the interpreted outer frames reach their own loops, the
 * re-armed OSR back-edge counter (reset by the eviction hook) lets
 * them escape through on-stack replacement — retranslating rec — after
 * osrBackEdgeThreshold fresh back edges.
 */
Program
osrRecoveryProgram()
{
    return test::makeProgramFull([](ProgramBuilder &pb) {
        ClassBuilder &t = pb.cls("T");
        for (int i = 0; i < 8; ++i) {
            MethodBuilder &fill = t.staticMethod(
                "fill" + std::to_string(i), {VType::Int}, VType::Int);
            fill.iload(0);
            for (int j = 0; j < 50; ++j)
                fill.iconst(j).iadd();
            fill.ireturn();
        }
        {
            MethodBuilder &m =
                t.staticMethod("rec", {VType::Int}, VType::Int);
            m.locals(3); // 0 = n, 1 = acc, 2 = i
            Label base = m.newLabel(), loop = m.newLabel(),
                  done = m.newLabel();
            m.iconst(0).istore(1);
            m.iload(0).ifle(base);
            m.iload(0).iconst(1).isub().invokeStatic("T.rec").istore(
                1);
            m.bind(base);
            m.iconst(120).istore(2);
            m.bind(loop);
            m.iload(2).ifle(done);
            for (int i = 0; i < 8; ++i) {
                m.iload(1)
                    .invokeStatic("T.fill" + std::to_string(i))
                    .istore(1);
            }
            m.iinc(2, -1);
            m.gotoL(loop);
            m.bind(done);
            m.iload(1).iload(0).iadd().ireturn();
        }
        MethodBuilder &main =
            t.staticMethod("main", {VType::Int}, VType::Int);
        main.iload(0).invokeStatic("T.rec").ireturn();
    });
}

TEST(CodeCacheRearm, OsrRecoversEvictedMethodWithLiveFrames)
{
    // Baseline: unlimited cache, nothing evicted.
    const Program base_prog = osrRecoveryProgram();
    EngineConfig base_cfg;
    base_cfg.policy = std::make_shared<CounterPolicy>(3);
    base_cfg.osrBackEdgeThreshold = 50;
    ExecutionEngine base_engine(base_prog, base_cfg);
    const RunResult base = base_engine.run(5);
    ASSERT_TRUE(base.completed);
    EXPECT_EQ(base.codeCacheEvictions, 0u);

    // Bounded: the filler flood evicts rec under the interpreted outer
    // frames; they recover through OSR on the re-armed counter, and
    // the program still computes the same answer.
    const Program prog = osrRecoveryProgram();
    EngineConfig cfg = base_cfg;
    cfg.codeCache.capacityBytes = 2 << 10;
    ExecutionEngine engine(prog, cfg);
    const RunResult res = engine.run(5);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.exitValue, base.exitValue);
    EXPECT_GT(res.codeCacheEvictions, 0u);
    EXPECT_GT(res.osrTransitions, 0u);
    EXPECT_GE(res.retranslations, 1u);
}

// ---------------------------------------------------------------------
// Sweep grid determinism
// ---------------------------------------------------------------------

TEST(CodeCacheSweep, TraceKeyComponentsOnlyWhenBounded)
{
    sweep::TraceKey key =
        sweep::traceKey("compress", sweep::ExecMode::jit());
    const std::string plain = key.str();
    EXPECT_EQ(plain.find("-cc"), std::string::npos);

    key.codeCache.capacityBytes = 64 << 10;
    key.codeCache.policy = EvictionPolicy::kLru;
    const std::string bounded = key.str();
    EXPECT_NE(bounded.find("-cc65536-lru"), std::string::npos);
    EXPECT_NE(bounded, plain);

    const RunSpec spec = key.toRunSpec();
    EXPECT_EQ(spec.codeCache.capacityBytes, 64u << 10);
    EXPECT_EQ(spec.codeCache.policy, EvictionPolicy::kLru);
}

TEST(CodeCacheSweep, TraceKeyBestFitAndOsrComponents)
{
    sweep::TraceKey key =
        sweep::traceKey("compress", sweep::ExecMode::jit());
    const std::string plain = key.str();
    EXPECT_EQ(plain.find("fit"), std::string::npos);
    EXPECT_EQ(plain.find("-osr"), std::string::npos);

    key.codeCache.strategy = AllocStrategy::kBestFit;
    key.osrBackEdgeThreshold = 64;
    const std::string tagged = key.str();
    EXPECT_NE(tagged.find("-bestfit"), std::string::npos);
    EXPECT_NE(tagged.find("-osr64"), std::string::npos);

    const RunSpec spec = key.toRunSpec();
    EXPECT_EQ(spec.codeCache.strategy, AllocStrategy::kBestFit);
    EXPECT_EQ(spec.osrBackEdgeThreshold, 64u);
}

TEST(CodeCacheSweep, GridIsDeterministicAcrossJobs)
{
    // One workload's slice of the capacity x policy grid, run with 1
    // worker and with 4: every metric must match bit-for-bit.
    std::vector<sweep::SweepPoint> points;
    for (sweep::SweepPoint &p : sweep::buildCodeCacheGrid()) {
        if (p.label.rfind("code_cache/javac/", 0) == 0)
            points.push_back(std::move(p));
    }
    ASSERT_FALSE(points.empty());

    sweep::SweepOptions serial;
    serial.jobs = 1;
    sweep::SweepEngine eng1(serial);
    const sweep::SweepResult r1 = eng1.run(points);
    for (const sweep::PointResult &p : r1.points) {
        ASSERT_TRUE(p.ok) << p.label << ": " << p.error;
    }

    sweep::SweepOptions wide;
    wide.jobs = 4;
    sweep::SweepEngine eng4(wide);
    const sweep::SweepResult r4 = eng4.run(points);
    ASSERT_TRUE(r4.allOk());

    ASSERT_EQ(r1.points.size(), r4.points.size());
    for (std::size_t i = 0; i < r1.points.size(); ++i) {
        const sweep::PointResult &a = r1.points[i];
        const sweep::PointResult *b = r4.find(a.label);
        ASSERT_NE(b, nullptr) << a.label;
        EXPECT_EQ(a.traceEvents, b->traceEvents) << a.label;
        for (const sweep::Metric &m : a.metrics) {
            EXPECT_EQ(m.value, b->metric(m.name))
                << a.label << " " << m.name;
        }
    }

    // Bounded points really exercised eviction: the tightest capacity
    // burns more of its stream on Translate work than the baseline.
    const sweep::PointResult *base = r1.find(sweep::codeCacheLabel(
        "javac", 0, EvictionPolicy::kFifo));
    const sweep::PointResult *tight = r1.find(sweep::codeCacheLabel(
        "javac", 2 << 10, EvictionPolicy::kFifo));
    ASSERT_NE(base, nullptr);
    ASSERT_NE(tight, nullptr);
    EXPECT_GT(tight->metric("translate_pct"),
              base->metric("translate_pct"));
}

// ---------------------------------------------------------------------
// Oracle-policy regression (no-JIT-evidence methods)
// ---------------------------------------------------------------------

TEST(CodeCacheOracle, NoJitEvidenceMeansKeepInterpreting)
{
    ProfileTable interp_run(2), jit_run(2);
    // Method 0: real evidence from both profiling runs; compiling is
    // clearly amortized.
    interp_run.of(0).invocations = 100;
    interp_run.of(0).interpEvents = 100000;
    jit_run.of(0).invocations = 100;
    jit_run.of(0).translateEvents = 500;
    jit_run.of(0).nativeEvents = 20000;
    // Method 1: interpreted evidence but NO jit-run invocations — its
    // jit_cost reads as zero, which the pre-fix oracle trusted and
    // therefore always compiled.
    interp_run.of(1).invocations = 50;
    interp_run.of(1).interpEvents = 90000;
    jit_run.of(1).invocations = 0;

    const std::vector<bool> compile =
        computeOracleDecisions(interp_run, jit_run);
    EXPECT_TRUE(compile[0]);
    EXPECT_FALSE(compile[1]) << "zero-evidence jit_cost must not win";
}

} // namespace
} // namespace jrs
