/**
 * JIT inlining / devirtualization (the paper's Section 7 proposal):
 * correctness (differential vs interpreter and vs the non-inlining
 * JIT) and effectiveness (indirect calls disappear at monomorphic
 * sites).
 */
#include <gtest/gtest.h>

#include "arch/mix/instruction_mix.h"
#include "vm_test_util.h"
#include "workloads/workload.h"

namespace jrs {
namespace {

RunResult
runInlined(const Program &prog, std::int32_t arg,
           TraceSink *sink = nullptr)
{
    EngineConfig cfg;
    cfg.policy = std::make_shared<AlwaysCompilePolicy>();
    cfg.jitInlining = true;
    cfg.sink = sink;
    ExecutionEngine engine(prog, cfg);
    return engine.run(arg);
}

RunResult
runPlain(const Program &prog, std::int32_t arg, TraceSink *sink)
{
    EngineConfig cfg;
    cfg.policy = std::make_shared<AlwaysCompilePolicy>();
    cfg.sink = sink;
    ExecutionEngine engine(prog, cfg);
    return engine.run(arg);
}

Program
getterProgram()
{
    return test::makeProgramFull([](ProgramBuilder &pb) {
        ClassBuilder &box = pb.cls("Box");
        box.field("v");
        {
            MethodBuilder &m =
                box.specialMethod("init", {VType::Int}, VType::Void);
            m.aload(0).iload(1).putFieldI("Box.v");
            m.returnVoid();
        }
        {
            MethodBuilder &m = box.virtualMethod("get", {}, VType::Int);
            m.aload(0).getFieldI("Box.v").ireturn();
        }
        {
            MethodBuilder &m =
                box.virtualMethod("scaled", {VType::Int}, VType::Int);
            m.aload(0).getFieldI("Box.v").iload(1).imul().ireturn();
        }
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.locals(4);
        m.newObject("Box").astore(1);
        m.aload(1).iload(0).invokeSpecial("Box.init");
        m.iconst(0).istore(2);
        m.iconst(100).istore(3);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(3).ifle(done);
        m.iload(2)
            .aload(1).invokeVirtual("Box.get").iadd()
            .aload(1).iconst(3).invokeVirtual("Box.scaled").iadd()
            .istore(2);
        m.iinc(3, -1);
        m.gotoL(loop);
        m.bind(done);
        m.iload(2).ireturn();
    });
}

TEST(Inlining, GetterResultsMatchInterpreter)
{
    const std::int32_t interp = test::runProgram(
        getterProgram(), 7, std::make_shared<NeverCompilePolicy>())
                                    .exitValue;
    const RunResult inlined = runInlined(getterProgram(), 7);
    ASSERT_TRUE(inlined.completed);
    EXPECT_EQ(inlined.exitValue, interp);
    EXPECT_GT(inlined.callsDevirtualized, 0u);
    EXPECT_GT(inlined.callsInlined, 0u);
}

TEST(Inlining, RemovesIndirectCallsAtMonomorphicSites)
{
    InstructionMix plain_mix, inline_mix;
    const Program p1 = getterProgram();
    (void)runPlain(p1, 7, &plain_mix);
    const Program p2 = getterProgram();
    const RunResult r = runInlined(p2, 7, &inline_mix);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(plain_mix.count(NKind::IndirectCall), 100u);
    EXPECT_EQ(inline_mix.count(NKind::IndirectCall), 0u);
    // Fewer instructions overall: no call/frame overhead.
    EXPECT_LT(inline_mix.total(), plain_mix.total());
}

TEST(Inlining, PolymorphicSitesKeepIndirectDispatch)
{
    auto build = [] {
        return test::makeProgramFull([](ProgramBuilder &pb) {
            ClassBuilder &base = pb.cls("A");
            {
                MethodBuilder &m = base.virtualMethod("f", {}, VType::Int);
                m.iconst(1).ireturn();
            }
            ClassBuilder &derived = pb.cls("B", "A");
            {
                MethodBuilder &m =
                    derived.virtualMethod("f", {}, VType::Int);
                m.iconst(2).ireturn();
            }
            ClassBuilder &t = pb.cls("T");
            MethodBuilder &m =
                t.staticMethod("main", {VType::Int}, VType::Int);
            m.locals(3);
            m.newObject("A").astore(1);
            m.newObject("B").astore(2);
            m.aload(1).invokeVirtual("A.f")
                .aload(2).invokeVirtual("A.f").iconst(10).imul()
                .iadd().ireturn();
        });
    };
    const RunResult r = runInlined(build(), 0);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.exitValue, 21);
    EXPECT_EQ(r.callsDevirtualized, 0u);  // two implementations
}

TEST(Inlining, NullReceiverStillThrows)
{
    const Program prog = test::makeProgramFull([](ProgramBuilder &pb) {
        ClassBuilder &box = pb.cls("Box");
        box.field("v");
        {
            MethodBuilder &m = box.virtualMethod("get", {}, VType::Int);
            m.aload(0).getFieldI("Box.v").ireturn();
        }
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.locals(2);
        Label ts = m.newLabel(), te = m.newLabel(), h = m.newLabel();
        m.aconstNull().astore(1);
        m.bind(ts);
        m.aload(1).invokeVirtual("Box.get");
        m.bind(te);
        m.ireturn();
        m.bind(h);
        m.pop();
        m.iconst(-5).ireturn();
        m.addHandler(ts, te, h);
    });
    const RunResult r = runInlined(prog, 0);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.exitValue, -5);
}

TEST(Inlining, RecursiveAndBranchyCalleesAreNotInlined)
{
    const Program prog = test::makeProgramFull([](ProgramBuilder &pb) {
        ClassBuilder &t = pb.cls("T");
        {
            // branchy: not eligible
            MethodBuilder &m =
                t.staticMethod("abs", {VType::Int}, VType::Int);
            Label neg = m.newLabel();
            m.iload(0).iflt(neg);
            m.iload(0).ireturn();
            m.bind(neg);
            m.iload(0).ineg().ireturn();
        }
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.iload(0).invokeStatic("T.abs").ireturn();
    });
    const RunResult r = runInlined(prog, -9);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.exitValue, 9);
    EXPECT_EQ(r.callsInlined, 0u);
}

class InliningWorkloads
    : public ::testing::TestWithParam<const char *> {};

TEST_P(InliningWorkloads, ChecksumsUnchanged)
{
    const WorkloadInfo *w = findWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    const Program p1 = w->build();
    const std::int32_t plain =
        test::runProgram(p1, w->tinyArg,
                         std::make_shared<AlwaysCompilePolicy>())
            .exitValue;
    const RunResult inlined = runInlined(w->build(), w->tinyArg);
    ASSERT_TRUE(inlined.completed);
    EXPECT_EQ(inlined.exitValue, plain);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, InliningWorkloads,
    ::testing::Values("compress", "jess", "db", "javac", "mpeg",
                      "mtrt", "jack", "hello"),
    [](const auto &info) { return std::string(info.param); });

class FoldingWorkloads
    : public ::testing::TestWithParam<const char *> {};

TEST_P(FoldingWorkloads, InterpreterFoldingPreservesSemantics)
{
    const WorkloadInfo *w = findWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    const Program p1 = w->build();
    const RunResult plain = test::runProgram(
        p1, w->tinyArg, std::make_shared<NeverCompilePolicy>());
    const Program p2 = w->build();
    EngineConfig cfg;
    cfg.policy = std::make_shared<NeverCompilePolicy>();
    cfg.interpreterFolding = true;
    ExecutionEngine engine(p2, cfg);
    const RunResult folded = engine.run(w->tinyArg);
    ASSERT_TRUE(folded.completed);
    EXPECT_EQ(folded.exitValue, plain.exitValue);
    EXPECT_GT(folded.dispatchesFolded, 0u);
    EXPECT_LT(folded.totalEvents, plain.totalEvents);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, FoldingWorkloads,
    ::testing::Values("compress", "jess", "db", "javac", "mpeg",
                      "mtrt", "jack", "hello"),
    [](const auto &info) { return std::string(info.param); });

} // namespace
} // namespace jrs
