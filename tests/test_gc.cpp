/**
 * @file
 * jrs::gc test suite (ctest label "gc").
 *
 * Pins the subsystem's contracts:
 *  - root enumeration is complete: cycles, ref-array interiors and
 *    static roots survive forced collections under both collectors,
 *    and ref-looking bits in a lockword do NOT keep an object alive;
 *  - the live digest is relocation-independent: identical across
 *    nogc, mark-sweep reallocation and copying evacuation;
 *  - every registered workload produces the same digest under every
 *    collector and every execution mode (forced-collection stress);
 *  - with no collector configured the engine is bit-identical to the
 *    GC-less design: same instruction stream, same raw heap hash,
 *    zero Phase::Gc events;
 *  - collector pauses are bracketed in Call...Ret at kGcPc, which is
 *    what the sweep grid's pause accounting relies on.
 */
#include <gtest/gtest.h>

#include "check/differential.h"
#include "check/digest.h"
#include "check/progen.h"
#include "gc/collector.h"
#include "gc/config.h"
#include "gc/gc_controller.h"
#include "vm_test_util.h"
#include "workloads/workload.h"

namespace jrs {
namespace {

using test::makeProgramFull;

gc::GcOptions
forcedGc(gc::CollectorKind kind, std::uint64_t every_n)
{
    gc::GcOptions opts;
    opts.collector = kind;
    opts.everyNAllocs = every_n;
    return opts;
}

/** Engine + result, kept together so liveHeapHash() stays callable. */
struct GcRun {
    std::unique_ptr<ExecutionEngine> engine;
    RunResult result;
};

GcRun
runGc(const Program &prog, const EngineConfig &cfg, std::int32_t arg)
{
    GcRun r;
    r.engine = std::make_unique<ExecutionEngine>(prog, cfg);
    r.result = r.engine->run(arg);
    return r;
}

EngineConfig
interpConfig(const gc::GcOptions &gc = {})
{
    EngineConfig cfg;
    cfg.policy = std::make_shared<NeverCompilePolicy>();
    cfg.gc = gc;
    return cfg;
}

/** Append `arg` garbage allocations (local 4 is the loop counter). */
void
emitChurnLoop(MethodBuilder &m)
{
    const Label loop = m.newLabel();
    const Label done = m.newLabel();
    m.iconst(0).istore(4);
    m.bind(loop);
    m.iload(4).iload(0).ifIcmpge(done);
    m.newObject("Node").pop();
    m.iinc(4, 1);
    m.gotoL(loop);
    m.bind(done);
}

void
declareNode(ProgramBuilder &pb)
{
    ClassBuilder &node = pb.cls("Node");
    node.field("val");
    node.field("next");
}

/**
 * A three-node reference cycle rooted only through local 1, churned by
 * `arg` garbage allocations. Returns 7 + 11 + 13 + 7 = 38: one full
 * lap plus one step, so every edge of the cycle must have survived.
 */
Program
cycleProgram()
{
    return makeProgramFull([](ProgramBuilder &pb) {
        declareNode(pb);
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.locals(6);
        m.newObject("Node").astore(1);
        m.newObject("Node").astore(2);
        m.newObject("Node").astore(3);
        m.aload(1).iconst(7).putFieldI("Node.val");
        m.aload(2).iconst(11).putFieldI("Node.val");
        m.aload(3).iconst(13).putFieldI("Node.val");
        m.aload(1).aload(2).putFieldA("Node.next");
        m.aload(2).aload(3).putFieldA("Node.next");
        m.aload(3).aload(1).putFieldA("Node.next");
        // Only the cycle head stays rooted.
        m.aconstNull().astore(2);
        m.aconstNull().astore(3);
        emitChurnLoop(m);
        m.aload(1).getFieldI("Node.val");
        m.aload(1).getFieldA("Node.next").getFieldI("Node.val")
            .iadd();
        m.aload(1).getFieldA("Node.next").getFieldA("Node.next")
            .getFieldI("Node.val").iadd();
        m.aload(1).getFieldA("Node.next").getFieldA("Node.next")
            .getFieldA("Node.next").getFieldI("Node.val").iadd();
        m.ireturn();
    });
}

/**
 * A ref array whose elements each point at a second-level node —
 * interior Ref-array slots are traced structurally, not through the
 * store-time bitmap. Returns (5+50) + (6+60) + (7+70) = 198.
 */
Program
refArrayProgram()
{
    return makeProgramFull([](ProgramBuilder &pb) {
        declareNode(pb);
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.locals(6);
        m.iconst(3).newArray(ArrayKind::Ref).astore(1);
        for (int i = 0; i < 3; ++i) {
            m.newObject("Node").astore(2);
            m.aload(2).iconst(5 + i).putFieldI("Node.val");
            m.newObject("Node").astore(3);
            m.aload(3).iconst((5 + i) * 10).putFieldI("Node.val");
            m.aload(2).aload(3).putFieldA("Node.next");
            m.aload(1).iconst(i).aload(2).aastore();
        }
        m.aconstNull().astore(2);
        m.aconstNull().astore(3);
        emitChurnLoop(m);
        m.iconst(0).istore(5);
        for (int i = 0; i < 3; ++i) {
            m.iload(5)
                .aload(1).iconst(i).aaload().getFieldI("Node.val")
                .iadd()
                .aload(1).iconst(i).aaload().getFieldA("Node.next")
                .getFieldI("Node.val").iadd()
                .istore(5);
        }
        m.iload(5).ireturn();
    });
}

/** One node rooted only through a static slot. Returns 42. */
Program
staticRootProgram()
{
    return makeProgramFull([](ProgramBuilder &pb) {
        pb.staticSlot("groot", VType::Ref);  // static slot 0
        declareNode(pb);
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.locals(6);
        m.newObject("Node").astore(1);
        m.aload(1).iconst(21).putFieldI("Node.val");
        m.aload(1).putStaticA("groot");
        m.aconstNull().astore(1);
        emitChurnLoop(m);
        m.getStaticA("groot").getFieldI("Node.val")
            .iconst(2).imul().ireturn();
    });
}

/** Monitor held across copying collections; returns 42. */
Program
monitorProgram()
{
    return makeProgramFull([](ProgramBuilder &pb) {
        declareNode(pb);
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.locals(6);
        m.newObject("Node").astore(1);
        m.aload(1).iconst(42).putFieldI("Node.val");
        // Lock, churn (collections move the node), unlock, relock.
        m.aload(1).monitorEnter();
        emitChurnLoop(m);
        m.aload(1).monitorExit();
        m.aload(1).monitorEnter();
        m.aload(1).getFieldI("Node.val").istore(5);
        m.aload(1).monitorExit();
        m.iload(5).ireturn();
    });
}

/** True when @p obj lies inside a free-list block (i.e. was swept). */
bool
inFreeList(const Heap &heap, SimAddr obj)
{
    const std::uint64_t off = obj - seg::kHeap;
    for (const Heap::FreeBlock &b : heap.freeBlocks()) {
        if (off >= b.off && off < std::uint64_t{b.off} + b.size)
            return true;
    }
    return false;
}

bool
sameEvents(const std::vector<TraceEvent> &a,
           const std::vector<TraceEvent> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const TraceEvent &x = a[i];
        const TraceEvent &y = b[i];
        if (x.pc != y.pc || x.mem != y.mem || x.target != y.target
            || x.kind != y.kind || x.phase != y.phase
            || x.taken != y.taken || x.memSize != y.memSize
            || x.rd != y.rd || x.rs1 != y.rs1 || x.rs2 != y.rs2) {
            return false;
        }
    }
    return true;
}

// --- root-enumeration completeness ----------------------------------------

class RootCompleteness
    : public testing::TestWithParam<gc::CollectorKind> {};

TEST_P(RootCompleteness, CycleSurvivesForcedCollections)
{
    const Program prog = cycleProgram();
    const GcRun run =
        runGc(prog, interpConfig(forcedGc(GetParam(), 3)), 64);
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.result.exitValue, 38);
    EXPECT_GT(run.result.gcStats.collections, 0u);
}

TEST_P(RootCompleteness, RefArrayInteriorSurvives)
{
    const Program prog = refArrayProgram();
    const GcRun run =
        runGc(prog, interpConfig(forcedGc(GetParam(), 3)), 64);
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.result.exitValue, 198);
    EXPECT_GT(run.result.gcStats.collections, 0u);
}

TEST_P(RootCompleteness, StaticRootSurvives)
{
    const Program prog = staticRootProgram();
    const GcRun run =
        runGc(prog, interpConfig(forcedGc(GetParam(), 3)), 64);
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.result.exitValue, 42);
    EXPECT_GT(run.result.gcStats.collections, 0u);
}

TEST_P(RootCompleteness, MonitorObjectSurvives)
{
    const Program prog = monitorProgram();
    const GcRun run =
        runGc(prog, interpConfig(forcedGc(GetParam(), 3)), 64);
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.result.exitValue, 42);
    EXPECT_GT(run.result.gcStats.collections, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Collectors, RootCompleteness,
    testing::Values(gc::CollectorKind::MarkSweep,
                    gc::CollectorKind::Copying),
    [](const testing::TestParamInfo<gc::CollectorKind> &info) {
        return gc::collectorName(info.param);
    });

/**
 * The negative case the RootVisitor protocol documents: lockwords are
 * not roots, so ref-looking bits stored in one must not keep the
 * referent alive — while a real (bitmap-tagged) field ref must.
 */
TEST(Roots, RefInLockwordIsNotARoot)
{
    const Program prog = staticRootProgram();
    // No triggers: nothing collects until we force it below.
    gc::GcOptions opts;
    opts.collector = gc::CollectorKind::MarkSweep;
    GcRun run = runGc(prog, interpConfig(opts), 8);
    ASSERT_TRUE(run.result.completed);
    ASSERT_EQ(run.result.gcStats.collections, 0u);

    ExecutionEngine &engine = *run.engine;
    Heap &heap = engine.heap();
    const SimAddr root = engine.registry().getStatic(0).asRef();
    ASSERT_NE(root, 0u);

    // `fake` is referenced only by ref-looking lockword bits; `kept`
    // by a genuine tagged field ref.
    const ClassId nodeCls = heap.klassOf(root);
    const SimAddr fake = heap.allocObject(nodeCls, 2);
    const SimAddr kept = heap.allocObject(nodeCls, 2);
    const std::uint32_t fakeBits =
        static_cast<std::uint32_t>(fake - seg::kHeap);
    heap.setLockword(root, fakeBits);
    heap.storeSlot(Heap::fieldAddr(root, 1),
                   static_cast<std::uint32_t>(kept - seg::kHeap),
                   true);

    ASSERT_NE(engine.gcController(), nullptr);
    engine.gcController()->collectNow();
    const gc::GcStats &stats = engine.gcController()->stats();
    EXPECT_EQ(stats.collections, 1u);
    EXPECT_GE(stats.rootsLast, 1u);

    EXPECT_TRUE(inFreeList(heap, fake));   // swept despite lockword
    EXPECT_FALSE(inFreeList(heap, kept));  // real ref pinned it
    EXPECT_FALSE(inFreeList(heap, root));
    EXPECT_EQ(heap.klassOf(kept), nodeCls);
    // The collector must not have "fixed up" the lockword either.
    EXPECT_EQ(heap.lockword(root), fakeBits);
}

// --- live digest -----------------------------------------------------------

TEST(LiveDigest, StableAcrossMarkSweepReallocation)
{
    const Program prog = cycleProgram();
    const GcRun nogc = runGc(prog, interpConfig(), 64);
    ASSERT_TRUE(nogc.result.completed);
    const std::uint64_t reference = nogc.engine->liveHeapHash();

    GcRun ms = runGc(
        prog,
        interpConfig(forcedGc(gc::CollectorKind::MarkSweep, 4)), 64);
    ASSERT_TRUE(ms.result.completed);
    EXPECT_GT(ms.result.gcStats.collections, 0u);
    // Same reachable graph regardless of fillers and free lists...
    EXPECT_EQ(ms.engine->liveHeapHash(), reference);
    // ...while the raw arena differs (dead churn was rewritten).
    EXPECT_NE(ms.engine->heap().contentHash(),
              nogc.engine->heap().contentHash());
    // Another collection re-sweeps; the live digest must not move.
    ms.engine->gcController()->collectNow();
    EXPECT_EQ(ms.engine->liveHeapHash(), reference);
}

TEST(LiveDigest, StableAcrossCopyingRelocation)
{
    const Program prog = refArrayProgram();
    const GcRun nogc = runGc(prog, interpConfig(), 64);
    ASSERT_TRUE(nogc.result.completed);
    const std::uint64_t reference = nogc.engine->liveHeapHash();

    GcRun cp = runGc(
        prog, interpConfig(forcedGc(gc::CollectorKind::Copying, 4)),
        64);
    ASSERT_TRUE(cp.result.completed);
    EXPECT_GT(cp.result.gcStats.collections, 0u);
    EXPECT_EQ(cp.engine->liveHeapHash(), reference);
    // Evacuate again: every address changes, the digest does not.
    cp.engine->gcController()->collectNow();
    EXPECT_EQ(cp.engine->liveHeapHash(), reference);
}

// --- workload digest invariance -------------------------------------------

/**
 * Every registered workload, every collector: the end state must match
 * the no-GC interp reference (threaded workloads compare the portable
 * subset), and interp/jit/hybrid must agree among themselves under
 * forced collections — the acceptance criterion of the subsystem.
 */
TEST(Digests, WorkloadsInvariantUnderEveryCollector)
{
    for (const WorkloadInfo &w : allWorkloads()) {
        const Program prog = w.build();
        const check::VmStateDigest reference =
            check::runDigest(prog, check::DiffMode::Interp, w.tinyArg);
        for (const gc::CollectorKind kind :
             {gc::CollectorKind::MarkSweep,
              gc::CollectorKind::Copying}) {
            const gc::GcOptions opts = forcedGc(kind, 8);
            const check::VmStateDigest gcd = check::runDigest(
                prog, check::DiffMode::Interp, w.tinyArg, opts);
            const bool threaded = reference.threadsSpawned != 0
                || gcd.threadsSpawned != 0;
            const bool same = threaded
                ? reference.portableEquals(gcd)
                : reference == gcd;
            EXPECT_TRUE(same)
                << w.name << " under " << gc::collectorName(kind)
                << ":\n"
                << check::describeDigestDiff("nogc", reference,
                                             gc::collectorName(kind),
                                             gcd);
        }
    }
}

TEST(Digests, WorkloadsAgreeAcrossModesUnderGc)
{
    for (const gc::CollectorKind kind :
         {gc::CollectorKind::MarkSweep, gc::CollectorKind::Copying}) {
        check::DifferentialRunner runner;
        runner.gc = forcedGc(kind, 8);
        for (const WorkloadInfo &w : allWorkloads()) {
            const check::DiffResult r = runner.checkWorkload(w, 0);
            EXPECT_TRUE(r.agreed)
                << w.name << " under " << gc::collectorName(kind)
                << ":\n" << r.report;
        }
    }
}

// --- generated-program stress ----------------------------------------------

TEST(Stress, ProgenForcedCollectionsMarkSweep)
{
    check::DifferentialRunner runner;
    runner.gc = forcedGc(gc::CollectorKind::MarkSweep, 16);
    const check::GenOptions opts;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const check::DiffResult r = runner.runSeed(seed, opts, 5);
        EXPECT_TRUE(r.agreed) << "seed " << seed << ":\n" << r.report;
    }
}

TEST(Stress, ProgenForcedCollectionsCopying)
{
    check::DifferentialRunner runner;
    runner.gc = forcedGc(gc::CollectorKind::Copying, 16);
    const check::GenOptions opts;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const check::DiffResult r = runner.runSeed(seed, opts, 5);
        EXPECT_TRUE(r.agreed) << "seed " << seed << ":\n" << r.report;
    }
}

// --- collector-off non-perturbation ---------------------------------------

/**
 * The subsystem's zero-cost-when-off guarantee: merely enabling a
 * collector that never triggers must not change a single emitted
 * instruction, heap byte, or counter relative to the GC-less engine.
 */
TEST(Timing, CollectorOffIsBitIdenticalToSeed)
{
    const Program prog = cycleProgram();
    for (const bool jit : {false, true}) {
        RecordingSink base;
        EngineConfig off;
        off.policy = jit
            ? std::static_pointer_cast<CompilationPolicy>(
                  std::make_shared<AlwaysCompilePolicy>())
            : std::make_shared<NeverCompilePolicy>();
        off.sink = &base;
        GcRun offRun = runGc(prog, off, 32);
        ASSERT_TRUE(offRun.result.completed);

        RecordingSink idle;
        EngineConfig on = off;
        on.sink = &idle;
        on.gc.collector = gc::CollectorKind::MarkSweep;
        // No budget, no everyN: with a 64 MiB heap the allocation
        // backstop never fires, so the collector never runs.
        GcRun idleRun = runGc(prog, on, 32);
        ASSERT_TRUE(idleRun.result.completed);

        EXPECT_TRUE(sameEvents(base.events(), idle.events()))
            << (jit ? "jit" : "interp")
            << ": idle collector perturbed the instruction stream";
        EXPECT_EQ(idleRun.result.gcStats.collections, 0u);
        EXPECT_EQ(idleRun.result.gcStats.gcEvents, 0u);
        EXPECT_EQ(idleRun.result.inPhase(Phase::Gc), 0u);
        EXPECT_EQ(idleRun.result.totalEvents,
                  offRun.result.totalEvents);
        EXPECT_EQ(idleRun.engine->heap().contentHash(),
                  offRun.engine->heap().contentHash());
        EXPECT_EQ(idleRun.result.exitValue, offRun.result.exitValue);
    }
}

// --- trace shape -----------------------------------------------------------

/**
 * Pause accounting (GcStats, the sweep grid's GcPhaseSink, and the
 * obs CPI stack) all lean on the same trace shape: one Call...Ret
 * bracket of Phase::Gc events per collection, in the kGcPc block.
 */
TEST(Trace, GcEventsBracketedPerCollection)
{
    const Program prog = cycleProgram();
    RecordingSink sink;
    EngineConfig cfg =
        interpConfig(forcedGc(gc::CollectorKind::MarkSweep, 4));
    cfg.sink = &sink;
    const GcRun run = runGc(prog, cfg, 64);
    ASSERT_TRUE(run.result.completed);
    const gc::GcStats &stats = run.result.gcStats;
    ASSERT_GT(stats.collections, 0u);

    std::uint64_t gcEvents = 0, calls = 0, rets = 0;
    for (const TraceEvent &ev : sink.events()) {
        if (ev.phase != Phase::Gc)
            continue;
        ++gcEvents;
        EXPECT_GE(ev.pc, gc::kGcPc);
        if (ev.kind == NKind::Call)
            ++calls;
        if (ev.kind == NKind::Ret)
            ++rets;
    }
    EXPECT_EQ(gcEvents, stats.gcEvents);
    EXPECT_EQ(gcEvents, run.result.inPhase(Phase::Gc));
    EXPECT_EQ(calls, stats.collections);
    EXPECT_EQ(rets, stats.collections);
    ASSERT_EQ(stats.pauseEvents.size(), stats.collections);
    std::uint64_t pauseSum = 0;
    for (const std::uint64_t p : stats.pauseEvents)
        pauseSum += p;
    EXPECT_EQ(pauseSum, stats.gcEvents);
}

// --- configuration parsing -------------------------------------------------

TEST(Config, ParseCollectorNames)
{
    gc::CollectorKind kind = gc::CollectorKind::None;
    EXPECT_TRUE(gc::parseCollector("marksweep", &kind));
    EXPECT_EQ(kind, gc::CollectorKind::MarkSweep);
    EXPECT_TRUE(gc::parseCollector("copying", &kind));
    EXPECT_EQ(kind, gc::CollectorKind::Copying);
    EXPECT_TRUE(gc::parseCollector("nogc", &kind));
    EXPECT_EQ(kind, gc::CollectorKind::None);
    EXPECT_TRUE(gc::parseCollector("none", &kind));
    EXPECT_EQ(kind, gc::CollectorKind::None);

    kind = gc::CollectorKind::Copying;
    EXPECT_FALSE(gc::parseCollector("generational", &kind));
    EXPECT_EQ(kind, gc::CollectorKind::Copying);  // untouched

    for (const gc::CollectorKind k : gc::allCollectorKinds()) {
        gc::CollectorKind round = gc::CollectorKind::MarkSweep;
        EXPECT_TRUE(gc::parseCollector(gc::collectorName(k), &round));
        EXPECT_EQ(round, k);
    }
}

} // namespace
} // namespace jrs
