#include <gtest/gtest.h>

#include "vm_test_util.h"

namespace jrs {
namespace {

/** A two-method program: hot helper called n times from main. */
Program
hotHelperProgram()
{
    return test::makeProgramFull([](ProgramBuilder &pb) {
        ClassBuilder &t = pb.cls("T");
        {
            MethodBuilder &m =
                t.staticMethod("helper", {VType::Int}, VType::Int);
            m.iload(0).iconst(3).imul().iconst(1).iadd().ireturn();
        }
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.locals(3);
        m.iconst(0).istore(1);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(0).ifle(done);
        m.iload(1).invokeStatic("T.helper").istore(1);
        m.iinc(0, -1);
        m.gotoL(loop);
        m.bind(done);
        m.iload(1).ireturn();
    });
}

TEST(Policy, NamesAndBasics)
{
    NeverCompilePolicy n;
    AlwaysCompilePolicy a;
    CounterPolicy c(5);
    EXPECT_STREQ(n.name(), "interpret");
    EXPECT_STREQ(a.name(), "jit");
    EXPECT_STREQ(c.name(), "counter");
    EXPECT_FALSE(n.shouldCompile(0, 1000));
    EXPECT_TRUE(a.shouldCompile(0, 1));
    EXPECT_FALSE(c.shouldCompile(0, 4));
    EXPECT_TRUE(c.shouldCompile(0, 5));
}

TEST(Policy, CounterCompilesAtThreshold)
{
    const Program prog = hotHelperProgram();
    const RunResult r = test::runProgram(
        prog, 10, std::make_shared<CounterPolicy>(4));
    ASSERT_TRUE(r.completed);
    // helper compiled (>=4 invocations), main compiled too (its own
    // counter reaches... main runs once, so with threshold 4 only
    // helper compiles).
    EXPECT_EQ(r.methodsCompiled, 1u);
    const MethodProfile &helper =
        r.profiles.of(prog.findMethod("T.helper")->id);
    EXPECT_EQ(helper.invocations, 10u);
    EXPECT_EQ(helper.interpInvocations, 3u);
    EXPECT_EQ(helper.nativeInvocations, 7u);
}

TEST(Policy, OracleDecisionMath)
{
    ProfileTable interp_run(2), jit_run(2);
    // Method 0: expensive to interpret, cheap once compiled.
    interp_run.of(0).invocations = 100;
    interp_run.of(0).interpEvents = 100000;
    jit_run.of(0).invocations = 100;
    jit_run.of(0).translateEvents = 500;
    jit_run.of(0).nativeEvents = 20000;
    // Method 1: invoked once; translation not amortized.
    interp_run.of(1).invocations = 1;
    interp_run.of(1).interpEvents = 100;
    jit_run.of(1).invocations = 1;
    jit_run.of(1).translateEvents = 600;
    jit_run.of(1).nativeEvents = 30;
    const auto decisions =
        computeOracleDecisions(interp_run, jit_run);
    ASSERT_EQ(decisions.size(), 2u);
    EXPECT_TRUE(decisions[0]);
    EXPECT_FALSE(decisions[1]);
}

TEST(Policy, OracleNeverInvokedMeansNoCompile)
{
    ProfileTable interp_run(1), jit_run(1);
    jit_run.of(0).translateEvents = 10;
    jit_run.of(0).nativeEvents = 1;
    EXPECT_FALSE(computeOracleDecisions(interp_run, jit_run)[0]);
}

TEST(Engine, ProfilesAttributeExclusiveCosts)
{
    const Program prog = hotHelperProgram();
    const RunResult r = test::runProgram(
        prog, 50, std::make_shared<NeverCompilePolicy>());
    ASSERT_TRUE(r.completed);
    const MethodProfile &helper =
        r.profiles.of(prog.findMethod("T.helper")->id);
    const MethodProfile &main =
        r.profiles.of(prog.findMethod("T.main")->id);
    EXPECT_EQ(helper.invocations, 50u);
    EXPECT_EQ(main.invocations, 1u);
    EXPECT_GT(helper.interpEvents, 0u);
    EXPECT_GT(main.interpEvents, helper.interpEvents / 50);
    EXPECT_EQ(helper.nativeEvents, 0u);
    EXPECT_EQ(helper.translateEvents, 0u);
    // Exclusive attribution: the parts sum to the total, modulo the
    // entry frame's setup stores which precede the first step.
    EXPECT_LE(r.totalEvents - (helper.interpEvents + main.interpEvents),
              8u);
}

TEST(Engine, MixedModeInterpCallsCompiledCallee)
{
    // Oracle that compiles only the helper: main stays interpreted and
    // must bridge into native code and back.
    const Program prog = hotHelperProgram();
    std::vector<bool> decide(prog.methods.size(), false);
    decide[prog.findMethod("T.helper")->id] = true;
    const RunResult r = test::runProgram(
        prog, 10, std::make_shared<OraclePolicy>(decide));
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.exitValue, test::runProgram(
                               hotHelperProgram(), 10,
                               std::make_shared<NeverCompilePolicy>())
                               .exitValue);
    EXPECT_GT(r.inPhase(Phase::Interpret), 0u);
    EXPECT_GT(r.inPhase(Phase::NativeExec), 0u);
}

TEST(Engine, MixedModeCompiledCallsInterpretedCallee)
{
    const Program prog = hotHelperProgram();
    std::vector<bool> decide(prog.methods.size(), false);
    decide[prog.findMethod("T.main")->id] = true;  // only main compiled
    const RunResult r = test::runProgram(
        prog, 10, std::make_shared<OraclePolicy>(decide));
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.inPhase(Phase::Interpret), 0u);
    EXPECT_GT(r.inPhase(Phase::NativeExec), 0u);
    const MethodProfile &helper =
        r.profiles.of(prog.findMethod("T.helper")->id);
    EXPECT_EQ(helper.interpInvocations, 10u);
}

TEST(Engine, RunTwiceThrows)
{
    const Program prog = hotHelperProgram();
    EngineConfig cfg;
    ExecutionEngine engine(prog, cfg);
    engine.run(1);
    EXPECT_THROW(engine.run(1), VmError);
}

TEST(Engine, MaxEventsStopsRunaway)
{
    const Program prog = test::makeProgram([](MethodBuilder &m) {
        Label loop = m.newLabel();
        m.bind(loop);
        m.gotoL(loop);  // infinite
    });
    EngineConfig cfg;
    cfg.policy = std::make_shared<NeverCompilePolicy>();
    cfg.maxEvents = 10000;
    ExecutionEngine engine(prog, cfg);
    const RunResult r = engine.run(0);
    EXPECT_FALSE(r.completed);
    EXPECT_GE(r.totalEvents, 10000u);
    EXPECT_LT(r.totalEvents, 20000u);
}

TEST(Engine, MemoryFootprintJitExceedsInterp)
{
    const Program prog = hotHelperProgram();
    const RunResult i = test::runProgram(
        prog, 30, std::make_shared<NeverCompilePolicy>());
    const RunResult j = test::runProgram(
        hotHelperProgram(), 30, std::make_shared<AlwaysCompilePolicy>());
    EXPECT_EQ(i.memory.codeCacheBytes, 0u);
    EXPECT_GT(j.memory.codeCacheBytes, 0u);
    EXPECT_GT(j.memory.translatorBytes, 0u);
    EXPECT_GT(j.memory.jitTotal(), i.memory.interpreterTotal());
}

TEST(Engine, StackHighWaterTracksRecursionDepth)
{
    auto build = [] {
        return test::makeProgramFull([](ProgramBuilder &pb) {
            ClassBuilder &t = pb.cls("T");
            {
                MethodBuilder &m =
                    t.staticMethod("down", {VType::Int}, VType::Int);
                Label z = m.newLabel();
                m.iload(0).ifle(z);
                m.iload(0).iconst(1).isub().invokeStatic("T.down")
                    .ireturn();
                m.bind(z);
                m.iconst(0).ireturn();
            }
            MethodBuilder &m =
                t.staticMethod("main", {VType::Int}, VType::Int);
            m.iload(0).invokeStatic("T.down").ireturn();
        });
    };
    const RunResult shallow = test::runProgram(
        build(), 2, std::make_shared<NeverCompilePolicy>());
    const RunResult deep = test::runProgram(
        build(), 200, std::make_shared<NeverCompilePolicy>());
    EXPECT_GT(deep.memory.stackBytes, shallow.memory.stackBytes);
}

TEST(Engine, UncompilableManyArgMethodFallsBackToInterp)
{
    // 10 int args exceed the 8 argument registers.
    const Program prog = test::makeProgramFull([](ProgramBuilder &pb) {
        ClassBuilder &t = pb.cls("T");
        {
            std::vector<VType> args(10, VType::Int);
            MethodBuilder &m =
                t.staticMethod("wide", args, VType::Int);
            m.iload(0);
            for (std::uint8_t i = 1; i < 10; ++i)
                m.iload(i).iadd();
            m.ireturn();
        }
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        for (int i = 1; i <= 10; ++i)
            m.iconst(i);
        m.invokeStatic("T.wide").ireturn();
    });
    const RunResult r = test::runProgram(
        prog, 0, std::make_shared<AlwaysCompilePolicy>());
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.exitValue, 55);
    EXPECT_GT(r.inPhase(Phase::Interpret), 0u);  // wide interpreted
}

TEST(Engine, QuantumPreemptsLongThread)
{
    // Two threads incrementing a shared static under a monitor with a
    // tiny quantum: interleaved, yet no update may be lost.
    const Program prog = test::makeProgramFull([](ProgramBuilder &pb) {
        pb.staticSlot("sum", VType::Int);
        pb.staticSlot("lock", VType::Ref);
        ClassBuilder &t = pb.cls("T");
        {
            MethodBuilder &m =
                t.staticMethod("worker", {VType::Int}, VType::Void);
            m.locals(2);
            m.iconst(100).istore(1);
            Label loop = m.newLabel(), done = m.newLabel();
            m.bind(loop);
            m.iload(1).ifle(done);
            m.getStaticA("lock").monitorEnter();
            m.getStaticI("sum").iconst(1).iadd().putStaticI("sum");
            m.getStaticA("lock").monitorExit();
            m.iinc(1, -1);
            m.gotoL(loop);
            m.bind(done);
            m.returnVoid();
        }
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.locals(3);
        m.iconst(1).newArray(ArrayKind::Int).putStaticA("lock");
        m.iconst(0).spawnThread("T.worker").istore(1);
        m.iconst(0).spawnThread("T.worker").istore(2);
        m.iload(1).joinThread();
        m.iload(2).joinThread();
        m.getStaticI("sum").ireturn();
    });
    EngineConfig cfg;
    cfg.policy = std::make_shared<NeverCompilePolicy>();
    cfg.quantum = 7;
    ExecutionEngine engine(prog, cfg);
    const RunResult r = engine.run(0);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.exitValue, 200);
}

TEST(Engine, DeadlockIsDetected)
{
    // Two threads each grab one lock then want the other's.
    const Program prog = test::makeProgramFull([](ProgramBuilder &pb) {
        pb.staticSlot("a", VType::Ref);
        pb.staticSlot("b", VType::Ref);
        ClassBuilder &t = pb.cls("T");
        {
            // worker(which): lock own, spin, lock other.
            MethodBuilder &m =
                t.staticMethod("worker", {VType::Int}, VType::Void);
            m.locals(4);
            Label own_b = m.newLabel(), got = m.newLabel();
            m.iload(0).ifne(own_b);
            m.getStaticA("a").astore(1);
            m.getStaticA("b").astore(2);
            m.gotoL(got);
            m.bind(own_b);
            m.getStaticA("b").astore(1);
            m.getStaticA("a").astore(2);
            m.bind(got);
            m.aload(1).monitorEnter();
            // spin a little so both threads hold their first lock
            m.iconst(100).istore(3);
            Label spin = m.newLabel(), go = m.newLabel();
            m.bind(spin);
            m.iload(3).ifle(go);
            m.iinc(3, -1);
            m.gotoL(spin);
            m.bind(go);
            m.aload(2).monitorEnter();
            m.aload(2).monitorExit();
            m.aload(1).monitorExit();
            m.returnVoid();
        }
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.locals(3);
        m.iconst(1).newArray(ArrayKind::Int).putStaticA("a");
        m.iconst(1).newArray(ArrayKind::Int).putStaticA("b");
        m.iconst(0).spawnThread("T.worker").istore(1);
        m.iconst(1).spawnThread("T.worker").istore(2);
        m.iload(1).joinThread();
        m.iload(2).joinThread();
        m.iconst(0).ireturn();
    });
    EngineConfig cfg;
    cfg.policy = std::make_shared<NeverCompilePolicy>();
    cfg.quantum = 20;
    ExecutionEngine engine(prog, cfg);
    EXPECT_THROW(engine.run(0), VmError);
}

} // namespace
} // namespace jrs
