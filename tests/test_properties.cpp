/**
 * Cross-module property tests: invariants that must hold for any
 * workload and configuration rather than specific scenarios.
 */
#include <gtest/gtest.h>

#include <set>

#include "arch/cache/cache.h"
#include "arch/mix/instruction_mix.h"
#include "harness/experiment.h"
#include "support/random.h"
#include "vm_test_util.h"

namespace jrs {
namespace {

class PerWorkload : public ::testing::TestWithParam<const char *> {
  protected:
    const WorkloadInfo *w() {
        const WorkloadInfo *info = findWorkload(GetParam());
        EXPECT_NE(info, nullptr);
        return info;
    }
};

TEST_P(PerWorkload, OracleNeverBeatenByBothPureModes)
{
    // The oracle optimizes total instructions given per-method
    // decisions; it must be at least as good as the better pure mode
    // (it can replicate either by compiling all or nothing).
    const OracleOutcome o = runOracleExperiment(*w(), w()->tinyArg);
    EXPECT_LE(o.oracleRun.totalEvents,
              std::min(o.interpRun.totalEvents, o.jitRun.totalEvents)
                  + o.interpRun.totalEvents / 50);
}

TEST_P(PerWorkload, PhaseCountsPartitionTotal)
{
    RunSpec s;
    s.workload = w();
    s.arg = w()->tinyArg;
    s.policy = std::make_shared<CounterPolicy>(2);
    const RunResult r = runWorkload(s);
    std::uint64_t sum = 0;
    for (std::size_t p = 0; p < kNumPhases; ++p)
        sum += r.phaseEvents[p];
    EXPECT_EQ(sum, r.totalEvents);
}

TEST_P(PerWorkload, ProfileInvocationsConserved)
{
    RunSpec s;
    s.workload = w();
    s.arg = w()->tinyArg;
    s.policy = std::make_shared<CounterPolicy>(3);
    const RunResult r = runWorkload(s);
    for (const MethodProfile &p : r.profiles.all()) {
        EXPECT_EQ(p.invocations,
                  p.interpInvocations + p.nativeInvocations);
    }
}

TEST_P(PerWorkload, LockEntersEqualExits)
{
    RunSpec s;
    s.workload = w();
    s.arg = w()->tinyArg;
    const RunResult r = runWorkload(s);
    EXPECT_EQ(r.lockStats.enterOps, r.lockStats.exitOps);
    // Every successful enter was classified.
    EXPECT_GE(r.lockStats.totalAccesses(), r.lockStats.enterOps);
}

TEST_P(PerWorkload, MemoryAccountingIsMonotone)
{
    const ModePair mp = runBothModes(*w(), w()->tinyArg, nullptr,
                                     nullptr);
    EXPECT_GT(mp.jit.memory.jitTotal(),
              mp.jit.memory.interpreterTotal());
    EXPECT_EQ(mp.interp.memory.codeCacheBytes, 0u);
    EXPECT_GT(mp.jit.memory.codeCacheBytes, 0u);
    // Heap usage is execution-mode independent (same allocations).
    EXPECT_EQ(mp.interp.memory.heapBytes, mp.jit.memory.heapBytes);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, PerWorkload,
    ::testing::Values("compress", "jess", "db", "javac", "mpeg",
                      "mtrt", "jack", "hello"),
    [](const auto &info) { return std::string(info.param); });

TEST(CacheProperty, LargerCacheNeverMissesMoreFullyAssociative)
{
    // With full associativity and LRU, a larger cache's contents are a
    // superset of a smaller one's (stack inclusion): misses can only
    // go down.
    Cache small({1024, 32, 32, true});   // fully assoc: 32 lines
    Cache large({4096, 32, 128, true});  // fully assoc: 128 lines
    XorShift64 rng(1234);
    std::uint64_t small_miss = 0, large_miss = 0;
    for (int i = 0; i < 50000; ++i) {
        const std::uint64_t addr = (rng.next() >> 40) & 0x7fff;
        if (!small.access(addr, false, Phase::Interpret))
            ++small_miss;
        if (!large.access(addr, false, Phase::Interpret))
            ++large_miss;
    }
    EXPECT_LE(large_miss, small_miss);
}

TEST(CacheProperty, MissesBoundedByAccessesAndCompulsory)
{
    Cache c({8192, 32, 2, true});
    XorShift64 rng(777);
    std::set<std::uint64_t> lines;
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t addr = (rng.next() >> 44) & 0xffff;
        lines.insert(addr >> 5);
        c.access(addr, (rng.next() & 1) != 0, Phase::Interpret);
    }
    EXPECT_LE(c.stats().misses(), c.stats().accesses());
    // At least one miss per distinct line (compulsory lower bound).
    EXPECT_GE(c.stats().misses(), lines.size());
}

TEST(EngineProperty, EventStreamIsIdenticalAcrossSinkSets)
{
    // Attaching observers must not perturb execution: the event count
    // seen by one sink equals the count with many sinks attached.
    const WorkloadInfo *w = findWorkload("db");
    CountingSink alone;
    {
        RunSpec s;
        s.workload = w;
        s.arg = w->tinyArg;
        s.sink = &alone;
        (void)runWorkload(s);
    }
    CountingSink a;
    InstructionMix b;
    CacheSink c({4096, 32, 1, true}, {4096, 32, 1, true});
    MultiSink multi;
    multi.add(&a);
    multi.add(&b);
    multi.add(&c);
    {
        RunSpec s;
        s.workload = w;
        s.arg = w->tinyArg;
        s.sink = &multi;
        (void)runWorkload(s);
    }
    EXPECT_EQ(alone.total(), a.total());
    EXPECT_EQ(alone.total(), b.total());
}

TEST(EngineProperty, QuantumDoesNotChangeSingleThreadedResults)
{
    const WorkloadInfo *w = findWorkload("javac");
    std::int32_t first = 0;
    std::uint64_t first_events = 0;
    for (std::uint64_t quantum : {7u, 100u, 100000u}) {
        const Program prog = w->build();
        EngineConfig cfg;
        cfg.policy = std::make_shared<AlwaysCompilePolicy>();
        cfg.quantum = quantum;
        ExecutionEngine engine(prog, cfg);
        const RunResult r = engine.run(w->tinyArg);
        ASSERT_TRUE(r.completed);
        if (first_events == 0) {
            first = r.exitValue;
            first_events = r.totalEvents;
        } else {
            EXPECT_EQ(r.exitValue, first);
            EXPECT_EQ(r.totalEvents, first_events);
        }
    }
}

TEST(EngineProperty, FoldingOnlyRemovesDispatchWork)
{
    // Folding must not change WHAT executes, only dispatch overhead:
    // loads/stores to the heap are identical.
    const WorkloadInfo *w = findWorkload("compress");
    auto heap_traffic = [&](bool folding) {
        class HeapCounter : public TraceSink {
          public:
            void onEvent(const TraceEvent &ev) override {
                if (isMemory(ev.kind) && inSegment(ev.mem, seg::kHeap))
                    ++count_;
            }
            std::uint64_t count_ = 0;
        } counter;
        const Program prog = w->build();
        EngineConfig cfg;
        cfg.policy = std::make_shared<NeverCompilePolicy>();
        cfg.interpreterFolding = folding;
        cfg.sink = &counter;
        ExecutionEngine engine(prog, cfg);
        (void)engine.run(w->tinyArg);
        return counter.count_;
    };
    EXPECT_EQ(heap_traffic(false), heap_traffic(true));
}

} // namespace
} // namespace jrs
