/**
 * Native-executor semantics at single-instruction granularity, plus
 * translator+executor microprograms that pin down lowering details
 * (ref encoding in heap slots, spills, jump tables, pointer math).
 */
#include <gtest/gtest.h>

#include <climits>

#include "vm_test_util.h"

namespace jrs {
namespace {

using test::jitRun;

TEST(ExecutorLowering, RefSlotEncodingRoundTrips)
{
    // Store a ref into a field, read it back through native code, and
    // dereference the result: exercises StRef/LdRef offset encoding.
    EXPECT_EQ(jitRun([](MethodBuilder &m) {
        m.locals(3);
        m.iconst(5).newArray(ArrayKind::Int).astore(1);
        m.aload(1).iconst(4).iconst(321).iastore();
        m.iconst(1).newArray(ArrayKind::Ref).astore(2);
        m.aload(2).iconst(0).aload(1).aastore();
        m.aload(2).iconst(0).aaload().iconst(4).iaload().ireturn();
    }), 321);
}

TEST(ExecutorLowering, NullRefThroughHeapSlotStaysNull)
{
    EXPECT_EQ(jitRun([](MethodBuilder &m) {
        m.locals(2);
        m.iconst(1).newArray(ArrayKind::Ref).astore(1);
        m.aload(1).iconst(0).aconstNull().aastore();
        Label is_null = m.newLabel();
        m.aload(1).iconst(0).aaload().ifnull(is_null);
        m.iconst(0).ireturn();
        m.bind(is_null);
        m.iconst(1).ireturn();
    }), 1);
}

TEST(ExecutorLowering, CharAndByteElementWidths)
{
    // 2-byte and 1-byte element address arithmetic (ShlI/AddP paths).
    EXPECT_EQ(jitRun([](MethodBuilder &m) {
        m.locals(3);
        m.iconst(8).newArray(ArrayKind::Char).astore(1);
        m.iconst(8).newArray(ArrayKind::Byte).astore(2);
        m.aload(1).iconst(7).iconst(0x1234).castore();
        m.aload(2).iconst(7).iconst(-3).bastore();
        m.aload(1).iconst(7).caload()
            .aload(2).iconst(7).baload().iadd().ireturn();
    }), 0x1234 - 3);
}

TEST(ExecutorLowering, NegativeImmediatesSignExtend)
{
    EXPECT_EQ(jitRun([](MethodBuilder &m) {
        m.iconst(-2000000000).iconst(-1).imul().ireturn();
    }), 2000000000);
    EXPECT_EQ(jitRun([](MethodBuilder &m) {
        m.locals(2);
        m.iconst(-128).istore(1);
        m.iinc(1, -100);
        m.iload(1).ireturn();
    }), -228);
}

TEST(ExecutorLowering, FloatBitsSurviveMoves)
{
    // Fconst's raw-bit MovI (aux=1) must not sign-extend: a negative
    // float's bits occupy the top of the 32-bit word.
    EXPECT_EQ(jitRun([](MethodBuilder &m) {
        m.locals(2);
        m.fconst(-2.5f).fstore(1);
        m.fload(1).fconst(-2.0f).fmul().f2i().ireturn();
    }), 5);
}

TEST(ExecutorLowering, JumpTableDispatchAllTargets)
{
    auto prog = [](MethodBuilder &m) {
        std::vector<Label> targets;
        Label d = m.newLabel();
        for (int i = 0; i < 6; ++i)
            targets.push_back(m.newLabel());
        m.iload(0);
        m.tableSwitch(10, targets, d);
        for (int i = 0; i < 6; ++i) {
            m.bind(targets[static_cast<std::size_t>(i)]);
            m.iconst(100 + i).ireturn();
        }
        m.bind(d);
        m.iconst(-1).ireturn();
    };
    for (int k = 0; k < 6; ++k)
        EXPECT_EQ(jitRun(prog, 10 + k), 100 + k);
    EXPECT_EQ(jitRun(prog, 16), -1);
    EXPECT_EQ(jitRun(prog, 9), -1);
    EXPECT_EQ(jitRun(prog, INT_MIN), -1);
}

TEST(ExecutorLowering, SpilledLocalsSurviveCalls)
{
    // Locals beyond the 12 local registers live in frame spill slots;
    // they must survive a nested call (fresh register window).
    EXPECT_EQ(test::bothModes([](MethodBuilder &m) {
        m.locals(18);
        for (std::uint8_t i = 1; i <= 17; ++i)
            m.iconst(i * 3).istore(i);
        m.iload(0).pop();
        // Overwrite low registers with a helper-style computation.
        m.iconst(1).iconst(2).iadd().pop();
        m.iload(15).iload(16).iadd().iload(17).iadd().ireturn();
    }), 45 + 48 + 51);
}

TEST(ExecutorLowering, DeepStackSpillsWithCalls)
{
    // Operand stack deeper than 7 at a call site: args move from
    // spill slots into argument registers.
    EXPECT_EQ(test::bothModes([](MethodBuilder &m) {
        for (int i = 1; i <= 9; ++i)
            m.iconst(i);
        // stack: 1..9; fold the top two through adds
        m.iadd().iadd().iadd().iadd().iadd().iadd().iadd().iadd();
        m.ireturn();
    }), 45);
}

TEST(ExecutorLowering, DivRemTrapsBecomeGuestExceptions)
{
    auto prog = [](MethodBuilder &m) {
        Label ts = m.newLabel(), te = m.newLabel(), h = m.newLabel();
        m.bind(ts);
        m.iconst(7).iload(0).irem();
        m.bind(te);
        m.ireturn();
        m.bind(h);
        m.pop();
        m.iconst(-99).ireturn();
        m.addHandler(ts, te, h);
    };
    EXPECT_EQ(jitRun(prog, 0), -99);
    EXPECT_EQ(jitRun(prog, 2), 1);
}

TEST(ExecutorLowering, BoundsCheckThrowsAtExactEdge)
{
    auto prog = [](MethodBuilder &m) {
        m.locals(2);
        Label ts = m.newLabel(), te = m.newLabel(), h = m.newLabel();
        m.iconst(4).newArray(ArrayKind::Int).astore(1);
        m.bind(ts);
        m.aload(1).iload(0).iaload();
        m.bind(te);
        m.ireturn();
        m.bind(h);
        m.pop();
        m.iconst(-1).ireturn();
        m.addHandler(ts, te, h);
    };
    EXPECT_EQ(jitRun(prog, 3), 0);   // last valid index
    EXPECT_EQ(jitRun(prog, 4), -1);  // first invalid
    EXPECT_EQ(jitRun(prog, -1), -1);
}

TEST(ExecutorLowering, StaticsOfAllTypes)
{
    const Program prog = test::makeProgramFull([](ProgramBuilder &pb) {
        pb.staticSlot("si", VType::Int);
        pb.staticSlot("sf", VType::Float);
        pb.staticSlot("sa", VType::Ref);
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.iconst(-7).putStaticI("si");
        m.fconst(0.5f).putStaticF("sf");
        m.iconst(2).newArray(ArrayKind::Int).putStaticA("sa");
        m.getStaticA("sa").iconst(1).iconst(40).iastore();
        m.getStaticI("si")
            .getStaticF("sf").fconst(4.0f).fmul().f2i().iadd()
            .getStaticA("sa").iconst(1).iaload().iadd().ireturn();
    });
    const RunResult r = test::runProgram(
        prog, 0, std::make_shared<AlwaysCompilePolicy>());
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.exitValue, -7 + 2 + 40);
}

TEST(ExecutorLowering, VirtualDispatchThroughNativeFrames)
{
    // Native main -> virtual f (overridden) -> virtual g, crossing
    // three register windows with live values in each.
    const Program prog = test::makeProgramFull([](ProgramBuilder &pb) {
        ClassBuilder &a = pb.cls("A");
        {
            MethodBuilder &m =
                a.virtualMethod("g", {VType::Int}, VType::Int);
            m.iload(1).iconst(2).imul().ireturn();
        }
        {
            MethodBuilder &m =
                a.virtualMethod("f", {VType::Int}, VType::Int);
            m.aload(0).iload(1).iconst(1).iadd()
                .invokeVirtual("A.g").iconst(10).iadd().ireturn();
        }
        ClassBuilder &b = pb.cls("B", "A");
        {
            MethodBuilder &m =
                b.virtualMethod("g", {VType::Int}, VType::Int);
            m.iload(1).iconst(3).imul().ireturn();
        }
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.locals(3);
        m.newObject("A").astore(1);
        m.newObject("B").astore(2);
        // A: (arg+1)*2+10 ; B: (arg+1)*3+10, via the same f
        m.aload(1).iload(0).invokeVirtual("A.f")
            .aload(2).iload(0).invokeVirtual("A.f")
            .iconst(1000).imul().iadd().ireturn();
    });
    const RunResult r = test::runProgram(
        prog, 4, std::make_shared<AlwaysCompilePolicy>());
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.exitValue, (5 * 2 + 10) + 1000 * (5 * 3 + 10));
}

TEST(ExecutorLowering, LookupSwitchSparseKeys)
{
    auto prog = [](MethodBuilder &m) {
        Label a = m.newLabel(), b = m.newLabel(), c = m.newLabel();
        Label d = m.newLabel();
        m.iload(0);
        m.lookupSwitch({{INT_MIN, a}, {0, b}, {INT_MAX, c}}, d);
        m.bind(a);
        m.iconst(1).ireturn();
        m.bind(b);
        m.iconst(2).ireturn();
        m.bind(c);
        m.iconst(3).ireturn();
        m.bind(d);
        m.iconst(4).ireturn();
    };
    EXPECT_EQ(jitRun(prog, INT_MIN), 1);
    EXPECT_EQ(jitRun(prog, 0), 2);
    EXPECT_EQ(jitRun(prog, INT_MAX), 3);
    EXPECT_EQ(jitRun(prog, 5), 4);
}

TEST(ExecutorLowering, ShiftMasksMatchInterpreter)
{
    for (std::int32_t count : {0, 1, 31, 32, 33, 63, -1}) {
        const std::int32_t i = test::interpret(
            [count](MethodBuilder &m) {
                m.iconst(-256).iconst(count).ishr().ireturn();
            });
        const std::int32_t j = jitRun([count](MethodBuilder &m) {
            m.iconst(-256).iconst(count).ishr().ireturn();
        });
        EXPECT_EQ(i, j) << "count=" << count;
    }
}

} // namespace
} // namespace jrs
