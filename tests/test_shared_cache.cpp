/**
 * @file
 * jrs shared cross-worker translation cache test suite (ctest label
 * "jit"; rides the TSan and UBSan CI jobs).
 *
 * Pins the SharedCodeCache contracts:
 *  - single-flight: N threads racing on one key perform exactly one
 *    build per key per generation (buildsFor is the witness);
 *  - reference counting: one ref per acquire, zero-ref entries stay
 *    resident for future sharers, bounded caches retire only zero-ref
 *    entries (FIFO), over-capacity transients die at last release;
 *  - a failed build poisons nothing: the in-flight entry is erased and
 *    the next requester restarts the single-flight;
 *  - fallback mode (waitForInflight=false) returns "deferred" instead
 *    of blocking behind another worker's build;
 *  - compatibility-key isolation: program / inlining / barrier
 *    differences never share an artifact;
 *  - engine integration: shared-cache runs are bit-identical to
 *    private runs (stream, events, exit value), repeat runs are pure
 *    hits (misses == 0), and a multithreaded stress run is clean under
 *    TSan with consistent aggregate accounting.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "harness/experiment.h"
#include "obs/obs.h"
#include "sweep/grids.h"
#include "sweep/sweep.h"
#include "vm/jit/shared_cache.h"
#include "vm/runtime/vm_error.h"
#include "workloads/workload.h"

namespace jrs {
namespace {

// ---------------------------------------------------------------------
// Unit-level helpers
// ---------------------------------------------------------------------

/** Synthetic artifact of @p insts instructions (8 sim bytes each). */
std::shared_ptr<const TranslationArtifact>
makeArtifact(std::size_t insts, std::uint64_t buildNs = 1000)
{
    auto a = std::make_shared<TranslationArtifact>();
    a->code.resize(insts);
    a->buildNs = buildNs;
    return a;
}

TranslationKey
keyFor(MethodId method, bool inlining = false,
       const std::string &program = "prog",
       const std::string &barriers = "")
{
    TranslationKey k;
    k.program = program;
    k.method = method;
    k.inlining = inlining;
    k.barriers = barriers;
    return k;
}

/** Order-sensitive FNV-1a digest over every TraceEvent field. */
class DigestSink : public TraceSink {
  public:
    void onEvent(const TraceEvent &ev) override {
        put(ev.pc);
        put(ev.mem);
        put(ev.target);
        put(static_cast<std::uint64_t>(ev.kind));
        put(static_cast<std::uint64_t>(ev.phase));
        put(ev.taken ? 1 : 0);
        put(ev.memSize);
        put(ev.rd);
        put(ev.rs1);
        put(ev.rs2);
    }
    std::uint64_t digest() const { return h_; }

  private:
    void put(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h_ ^= (v >> (8 * i)) & 0xff;
            h_ *= 1099511628211ull;
        }
    }
    std::uint64_t h_ = 14695981039346656037ull;
};

std::uint64_t
digestOf(const RecordedRun &run)
{
    DigestSink sink;
    run.trace->replay(sink);
    return sink.digest();
}

// ---------------------------------------------------------------------
// Single-flight
// ---------------------------------------------------------------------

TEST(SharedCacheSingleFlight, NThreadsOneBuildPerKey)
{
    SharedCodeCache cache;
    const TranslationKey k = keyFor(7);
    std::atomic<int> builds{0};
    constexpr int kThreads = 8;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            auto artifact = cache.acquire(k, [&] {
                ++builds;
                // Widen the in-flight window so contenders really
                // arrive mid-build.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
                return makeArtifact(8);
            });
            ASSERT_NE(artifact, nullptr);
        });
    }
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(builds.load(), 1);
    EXPECT_EQ(cache.buildsFor(k), 1u);
    const SharedCacheStats s = cache.stats();
    EXPECT_EQ(s.lookups, static_cast<std::uint64_t>(kThreads));
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.sharedHits, static_cast<std::uint64_t>(kThreads - 1));
    EXPECT_EQ(s.installs, 1u);
    EXPECT_EQ(cache.refsOn(k), static_cast<std::size_t>(kThreads));
}

TEST(SharedCacheSingleFlight, FailedBuildErasesAndRetries)
{
    SharedCodeCache cache;
    const TranslationKey k = keyFor(1);
    EXPECT_THROW(cache.acquire(
                     k,
                     []() -> std::shared_ptr<const TranslationArtifact> {
                         throw VmError("translator exploded");
                     }),
                 VmError);
    EXPECT_EQ(cache.buildsFor(k), 0u);
    EXPECT_EQ(cache.refsOn(k), 0u);

    // The key is not poisoned: the next requester builds normally.
    bool hit = true;
    auto artifact = cache.acquire(k, [] { return makeArtifact(8); },
                                  &hit);
    ASSERT_NE(artifact, nullptr);
    EXPECT_FALSE(hit);
    EXPECT_EQ(cache.buildsFor(k), 1u);
    const SharedCacheStats s = cache.stats();
    EXPECT_EQ(s.misses, 2u); // the failed attempt still counted
    EXPECT_EQ(s.installs, 1u);
}

TEST(SharedCacheSingleFlight, FallbackModeDefersBehindInflightBuild)
{
    SharedCacheConfig cfg;
    cfg.waitForInflight = false;
    SharedCodeCache cache(cfg);
    const TranslationKey k = keyFor(3);

    std::promise<void> entered, unblock;
    std::thread builder([&] {
        cache.acquire(k, [&] {
            entered.set_value();
            unblock.get_future().wait();
            return makeArtifact(8);
        });
    });
    entered.get_future().wait();

    // The build is in flight: fallback mode returns deferred instead
    // of blocking.
    bool hit = true;
    EXPECT_EQ(cache.acquire(k, [] { return makeArtifact(8); }, &hit),
              nullptr);
    EXPECT_FALSE(hit);
    EXPECT_EQ(cache.stats().deferred, 1u);
    EXPECT_EQ(cache.stats().contended, 1u);

    unblock.set_value();
    builder.join();

    // Once published, the retry is an ordinary shared hit.
    ASSERT_NE(cache.acquire(k, [] { return makeArtifact(8); }, &hit),
              nullptr);
    EXPECT_TRUE(hit);
    EXPECT_EQ(cache.buildsFor(k), 1u);
}

// ---------------------------------------------------------------------
// Reference counting and bounded eviction
// ---------------------------------------------------------------------

TEST(SharedCacheRefs, ZeroRefEntriesStayResident)
{
    SharedCodeCache cache;
    const TranslationKey k = keyFor(5);
    auto build = [] { return makeArtifact(8, 500); };

    cache.acquire(k, build);
    cache.acquire(k, build);
    EXPECT_EQ(cache.refsOn(k), 2u);
    cache.release(k);
    EXPECT_EQ(cache.refsOn(k), 1u);
    cache.release(k);
    EXPECT_EQ(cache.refsOn(k), 0u);
    cache.release(k); // over-release is a no-op
    EXPECT_EQ(cache.refsOn(k), 0u);

    // The artifact is still cached: a later worker hits without a
    // rebuild and the saved ns are credited.
    bool hit = false;
    ASSERT_NE(cache.acquire(k, build, &hit), nullptr);
    EXPECT_TRUE(hit);
    EXPECT_EQ(cache.buildsFor(k), 1u);
    EXPECT_EQ(cache.stats().buildNsSaved, 2u * 500u);
    EXPECT_EQ(cache.stats().liveEntries, 1u);
}

TEST(SharedCacheRefs, BoundedEvictsOnlyZeroRefFifo)
{
    SharedCacheConfig cfg;
    cfg.capacityBytes = 128; // room for two 64-byte artifacts
    SharedCodeCache cache(cfg);
    const TranslationKey a = keyFor(1);
    const TranslationKey b = keyFor(2);
    const TranslationKey c = keyFor(3);
    auto build = [] { return makeArtifact(8); };

    cache.acquire(a, build); // held: ref 1
    cache.acquire(b, build);
    cache.release(b); // idle: ref 0, still resident
    EXPECT_EQ(cache.stats().liveBytes, 128u);

    // c needs space: the idle FIFO victim is b; a is pinned by its
    // reference and must survive.
    cache.acquire(c, build);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().bytesEvicted, 64u);

    bool hit = false;
    ASSERT_NE(cache.acquire(a, build, &hit), nullptr);
    EXPECT_TRUE(hit) << "pinned entry must not be evicted";

    // b was retired: re-acquiring it is a new generation.
    cache.release(c); // make room for the rebuild
    hit = true;
    ASSERT_NE(cache.acquire(b, build, &hit), nullptr);
    EXPECT_FALSE(hit);
    EXPECT_EQ(cache.buildsFor(b), 2u);
}

TEST(SharedCacheRefs, OverCapacityTransientDiesAtLastRelease)
{
    SharedCacheConfig cfg;
    cfg.capacityBytes = 64;
    SharedCodeCache cache(cfg);
    const TranslationKey k = keyFor(9);
    auto big = [] { return makeArtifact(32); }; // 256B > capacity

    // The artifact is served anyway — the current holders share it —
    // but it is never byte-accounted.
    ASSERT_NE(cache.acquire(k, big), nullptr);
    EXPECT_EQ(cache.stats().liveEntries, 1u);
    EXPECT_EQ(cache.stats().liveBytes, 0u);

    // Dropping the last reference retires the transient immediately.
    cache.release(k);
    EXPECT_EQ(cache.stats().liveEntries, 0u);
    EXPECT_EQ(cache.stats().evictions, 1u);

    bool hit = true;
    ASSERT_NE(cache.acquire(k, big, &hit), nullptr);
    EXPECT_FALSE(hit);
    EXPECT_EQ(cache.buildsFor(k), 2u);
}

// ---------------------------------------------------------------------
// Compatibility key
// ---------------------------------------------------------------------

TEST(SharedCacheKey, ConfigDifferencesNeverShare)
{
    SharedCodeCache cache;
    std::atomic<int> builds{0};
    auto build = [&] {
        ++builds;
        return makeArtifact(8);
    };

    // Same method id under four incompatible configurations: every
    // one builds its own artifact.
    cache.acquire(keyFor(1, false, "compress", ""), build);
    cache.acquire(keyFor(1, true, "compress", ""), build);
    cache.acquire(keyFor(1, false, "javac", ""), build);
    cache.acquire(keyFor(1, false, "compress", "marksweep"), build);
    EXPECT_EQ(builds.load(), 4);
    EXPECT_EQ(cache.stats().sharedHits, 0u);

    // ...and the exact same key shares.
    bool hit = false;
    cache.acquire(keyFor(1, false, "compress", ""), build, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(builds.load(), 4);

    EXPECT_EQ(keyFor(1, true, "compress", "marksweep").str(),
              "compress/#1+inline+marksweep");
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

TEST(SharedCacheMetrics, PublishMirrorsStats)
{
    obs::metrics().reset();
    obs::setEnabled(true);
    SharedCodeCache cache;
    const TranslationKey k = keyFor(4);
    cache.acquire(k, [] { return makeArtifact(8, 700); });
    cache.acquire(k, [] { return makeArtifact(8, 700); });
    cache.publishMetrics();
    obs::setEnabled(false);
    EXPECT_EQ(obs::metrics().gaugeValue("code_cache.shared.lookups"),
              2.0);
    EXPECT_EQ(obs::metrics().gaugeValue("code_cache.shared.hits"),
              1.0);
    EXPECT_EQ(obs::metrics().gaugeValue("code_cache.shared.misses"),
              1.0);
    EXPECT_EQ(obs::metrics().gaugeValue("code_cache.shared.build_ns"),
              700.0);
    EXPECT_EQ(
        obs::metrics().gaugeValue("code_cache.shared.build_ns_saved"),
        700.0);
    EXPECT_EQ(
        obs::metrics().gaugeValue("code_cache.shared.live_entries"),
        1.0);
    obs::metrics().reset();
}

// ---------------------------------------------------------------------
// Multithreaded stress (the TSan workout)
// ---------------------------------------------------------------------

TEST(SharedCacheStress, WorkersHammerOneBoundedCache)
{
    SharedCacheConfig cfg;
    cfg.capacityBytes = 4 << 10; // tight: forces eviction churn
    SharedCodeCache cache(cfg);
    constexpr int kThreads = 8;
    constexpr int kIters = 200;
    constexpr int kKeys = 16;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, t] {
            std::vector<TranslationKey> held;
            for (int i = 0; i < kIters; ++i) {
                const TranslationKey k =
                    keyFor((t * 31 + i * 7) % kKeys);
                auto artifact = cache.acquire(k, [&k] {
                    return makeArtifact(8 + 8 * (k.method % 4), 100);
                });
                ASSERT_NE(artifact, nullptr);
                ASSERT_GE(artifact->code.size(), 8u);
                if (i % 3 == 0)
                    cache.release(k); // short-lived holder
                else
                    held.push_back(k);
                // Periodically drain so zero-ref entries exist for the
                // eviction path to chew on.
                if (held.size() > 8) {
                    for (const TranslationKey &h : held)
                        cache.release(h);
                    held.clear();
                }
            }
            for (const TranslationKey &h : held)
                cache.release(h);
        });
    }
    for (std::thread &t : threads)
        t.join();

    const SharedCacheStats s = cache.stats();
    EXPECT_EQ(s.lookups,
              static_cast<std::uint64_t>(kThreads) * kIters);
    // Blocking mode: every lookup resolves to a hit or a miss.
    EXPECT_EQ(s.sharedHits + s.misses, s.lookups);
    EXPECT_EQ(s.deferred, 0u);
    EXPECT_GT(s.sharedHits, 0u);
    std::uint64_t builds = 0;
    for (int m = 0; m < kKeys; ++m) {
        EXPECT_GE(cache.buildsFor(m < kKeys ? keyFor(m) : keyFor(0)),
                  1u);
        builds += cache.buildsFor(keyFor(m));
    }
    // Generations line up: every miss is exactly one recorded build.
    EXPECT_EQ(builds, s.misses);
    EXPECT_EQ(builds, s.installs);
}

// ---------------------------------------------------------------------
// Engine integration: bit-identity and translate-once
// ---------------------------------------------------------------------

RunSpec
helloSpec()
{
    RunSpec spec;
    spec.workload = findWorkload("hello");
    spec.arg = spec.workload->tinyArg;
    return spec;
}

TEST(SharedCacheEngine, SharedRunsAreBitIdenticalToPrivate)
{
    const RecordedRun priv = recordWorkload(helloSpec());
    ASSERT_TRUE(priv.result.completed);
    EXPECT_EQ(priv.result.sharedTranslationHits, 0u);
    EXPECT_EQ(priv.result.sharedTranslationMisses, 0u);
    EXPECT_GT(priv.result.translateBuildNs, 0u);

    auto shared = std::make_shared<SharedCodeCache>();
    RunSpec spec = helloSpec();
    spec.sharedCache = shared;
    const RecordedRun s1 = recordWorkload(spec);
    const RecordedRun s2 = recordWorkload(spec);
    ASSERT_TRUE(s1.result.completed);
    ASSERT_TRUE(s2.result.completed);

    // First shared run builds everything; the repeat is pure hits —
    // exactly one translate per method per generation, process-wide.
    EXPECT_GT(s1.result.sharedTranslationMisses, 0u);
    EXPECT_EQ(s1.result.sharedTranslationHits, 0u);
    EXPECT_EQ(s2.result.sharedTranslationMisses, 0u);
    EXPECT_EQ(s2.result.sharedTranslationHits,
              s1.result.sharedTranslationMisses);
    EXPECT_GT(s2.result.translateBuildNsSaved, 0u);
    EXPECT_EQ(shared->stats().misses,
              s1.result.sharedTranslationMisses);

    // Sharing saves host work, never changes the simulated stream.
    EXPECT_EQ(s1.result.exitValue, priv.result.exitValue);
    EXPECT_EQ(s1.result.totalEvents, priv.result.totalEvents);
    EXPECT_EQ(s2.result.totalEvents, priv.result.totalEvents);
    const std::uint64_t want = digestOf(priv);
    EXPECT_EQ(digestOf(s1), want);
    EXPECT_EQ(digestOf(s2), want);
}

TEST(SharedCacheEngine, FallbackModeUncontendedIsStillIdentical)
{
    const RecordedRun priv = recordWorkload(helloSpec());
    SharedCacheConfig cfg;
    cfg.waitForInflight = false;
    RunSpec spec = helloSpec();
    spec.sharedCache = std::make_shared<SharedCodeCache>(cfg);
    const RecordedRun rec = recordWorkload(spec);
    ASSERT_TRUE(rec.result.completed);
    // A lone engine never meets an in-flight build, so fallback mode
    // degenerates to the deterministic path.
    EXPECT_EQ(spec.sharedCache->stats().deferred, 0u);
    EXPECT_EQ(rec.result.totalEvents, priv.result.totalEvents);
    EXPECT_EQ(digestOf(rec), digestOf(priv));
}

TEST(SharedCacheSweep, SharedSweepMatchesPrivateBitForBit)
{
    // One workload's slice of the code-cache grid at tiny input: 18
    // different cache configurations that all share artifacts (the
    // compatibility key ignores capacity/policy/strategy — artifacts
    // are address-independent).
    std::vector<sweep::SweepPoint> points;
    for (sweep::SweepPoint &p : sweep::buildCodeCacheGrid()) {
        if (p.label.rfind("code_cache/compress/", 0) == 0) {
            p.key.arg = findWorkload("compress")->tinyArg;
            points.push_back(std::move(p));
        }
    }
    ASSERT_FALSE(points.empty());

    sweep::SweepOptions privOpts;
    privOpts.jobs = 4;
    sweep::SweepEngine privEng(privOpts);
    const sweep::SweepResult priv = privEng.run(points);
    ASSERT_TRUE(priv.allOk());
    EXPECT_FALSE(priv.sharedCacheUsed);

    sweep::SweepOptions sharedOpts;
    sharedOpts.jobs = 4;
    sharedOpts.sharedCache = std::make_shared<SharedCodeCache>();
    sweep::SweepEngine sharedEng(sharedOpts);
    const sweep::SweepResult shared = sharedEng.run(points);
    ASSERT_TRUE(shared.allOk());

    // The shared cache did real cross-worker work: one build per
    // compatibility key, every other translation served as a hit.
    EXPECT_TRUE(shared.sharedCacheUsed);
    EXPECT_GT(shared.shared.sharedHits, 0u);
    EXPECT_GT(shared.shared.misses, 0u);
    EXPECT_EQ(shared.shared.sharedHits + shared.shared.misses,
              shared.shared.lookups);
    EXPECT_GT(shared.shared.buildNsSaved, 0u);
    EXPECT_LT(shared.traces.translateBuildNs,
              priv.traces.translateBuildNs);

    // ...and not one metric moved: every point is bit-identical.
    ASSERT_EQ(priv.points.size(), shared.points.size());
    for (const sweep::PointResult &a : priv.points) {
        const sweep::PointResult *b = shared.find(a.label);
        ASSERT_NE(b, nullptr) << a.label;
        EXPECT_EQ(a.traceEvents, b->traceEvents) << a.label;
        ASSERT_EQ(a.metrics.size(), b->metrics.size()) << a.label;
        for (const sweep::Metric &m : a.metrics) {
            EXPECT_EQ(m.value, b->metric(m.name))
                << a.label << " " << m.name;
        }
    }
}

} // namespace
} // namespace jrs
