/**
 * @file
 * Sweep-engine contract tests: parallel results are bit-identical to
 * live serial runs, faults poison only their own point, and the trace
 * cache records each stream exactly once (memory and disk).
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

#include "arch/bpred/predictors.h"
#include "arch/cache/cache.h"
#include "arch/pipeline/pipeline.h"
#include "harness/experiment.h"
#include "isa/trace_buffer.h"
#include "sweep/sweep.h"
#include "vm/runtime/vm_error.h"

namespace jrs::sweep {
namespace {

/** Unique-per-test temp dir, removed at scope exit. */
struct TempDir {
    explicit TempDir(const std::string &leaf)
        : path(std::string(::testing::TempDir()) + leaf)
    {
        std::filesystem::remove_all(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }
    std::string path;
};

/** tinyArg key so every recorded run stays sub-second. */
TraceKey
tinyKey(const std::string &workload, ExecMode mode)
{
    const WorkloadInfo *w = findWorkload(workload);
    EXPECT_NE(w, nullptr) << workload;
    return traceKey(workload, mode, w->tinyArg);
}

CacheConfig
l1(std::uint32_t assoc)
{
    return {8 * 1024, 32, assoc, true};
}

/** Cache point measuring I/D miss rates at one associativity. */
SweepPoint
cachePoint(const std::string &label, const TraceKey &key,
           std::uint32_t assoc)
{
    return makePoint<CacheSink>(
        label, key,
        [assoc] {
            return std::make_unique<CacheSink>(l1(assoc), l1(assoc));
        },
        [](CacheSink &sink, const RecordedRun &) {
            return std::vector<Metric>{
                {"i_miss", sink.icache().stats().missRate()},
                {"d_miss", sink.dcache().stats().missRate()},
            };
        });
}

SweepPoint
bpredPoint(const std::string &label, const TraceKey &key)
{
    return makePoint<PredictorBank>(
        label, key,
        [] { return std::make_unique<PredictorBank>(); },
        [](PredictorBank &sink, const RecordedRun &) {
            std::vector<Metric> out;
            for (const PredictorResult &r : sink.results())
                out.push_back({r.name, r.mispredictRate()});
            out.push_back(
                {"btb_misses",
                 static_cast<double>(sink.btbMisses())});
            return out;
        });
}

SweepPoint
pipelinePoint(const std::string &label, const TraceKey &key)
{
    return makePoint<PipelineSim>(
        label, key,
        [] { return std::make_unique<PipelineSim>(PipelineConfig{}); },
        [](PipelineSim &sink, const RecordedRun &) {
            return std::vector<Metric>{
                {"ipc", sink.ipc()},
                {"cycles", static_cast<double>(sink.cycles())},
                {"mispredicts",
                 static_cast<double>(sink.mispredicts())},
            };
        });
}

/** A grid mixing cache, bpred, and pipeline models over four streams. */
std::vector<SweepPoint>
mixedGrid()
{
    std::vector<SweepPoint> grid;
    for (const char *w : {"compress", "db"}) {
        for (const bool jit : {false, true}) {
            const TraceKey key = tinyKey(
                w, jit ? ExecMode::jit() : ExecMode::interp());
            const std::string base =
                std::string(w) + "/" + (jit ? "jit" : "interp");
            grid.push_back(cachePoint(base + "/assoc1", key, 1));
            grid.push_back(cachePoint(base + "/assoc4", key, 4));
            grid.push_back(bpredPoint(base + "/bpred", key));
            grid.push_back(pipelinePoint(base + "/pipeline", key));
        }
    }
    return grid;
}

/**
 * Run one point the pre-sweep way: attach its sink to a live,
 * serial VM run and extract the same metrics.
 */
std::vector<Metric>
liveSerialMetrics(const SweepPoint &p)
{
    // The factories in these grids ignore their RecordedRun argument
    // (plain cache/bpred/pipeline models), so an empty recording
    // stands in and the sink can observe the run live.
    const RecordedRun none;
    std::unique_ptr<TraceSink> sink = p.makeSink(none);
    RunSpec spec = p.key.toRunSpec();
    spec.sink = sink.get();
    RecordedRun run = recordWorkload(spec);
    return p.extract(*sink, run);
}

TEST(Sweep, ParallelResultsBitIdenticalToLiveSerial)
{
    const std::vector<SweepPoint> grid = mixedGrid();

    SweepOptions opt;
    opt.jobs = 4;
    SweepEngine engine(opt);
    const SweepResult result = engine.run(grid);

    ASSERT_EQ(result.points.size(), grid.size());
    ASSERT_TRUE(result.allOk());
    // Deterministic ordering: slot i belongs to grid point i no
    // matter which worker computed it.
    for (std::size_t i = 0; i < grid.size(); ++i)
        EXPECT_EQ(result.points[i].label, grid[i].label);

    for (std::size_t i = 0; i < grid.size(); ++i) {
        const std::vector<Metric> serial = liveSerialMetrics(grid[i]);
        const PointResult &par = result.points[i];
        ASSERT_EQ(par.metrics.size(), serial.size()) << par.label;
        for (std::size_t m = 0; m < serial.size(); ++m) {
            EXPECT_EQ(par.metrics[m].name, serial[m].name)
                << par.label;
            // Exact: same integer counters fed to the same float
            // arithmetic must give the same bits.
            EXPECT_EQ(par.metrics[m].value, serial[m].value)
                << par.label << "." << serial[m].name;
        }
    }

    // Four unique streams, recorded once each, everything else served
    // from memory.
    EXPECT_EQ(result.traces.recordings, 4u);
    EXPECT_EQ(result.traces.diskLoads, 0u);
}

TEST(Sweep, ThrowingSinkFactoryPoisonsOnlyItsPoint)
{
    const TraceKey key = tinyKey("compress", ExecMode::interp());
    std::vector<SweepPoint> grid;
    grid.push_back(cachePoint("before", key, 1));
    grid.push_back(cachePoint("bad", key, 2));
    grid[1].makeSink =
        [](const RecordedRun &) -> std::unique_ptr<TraceSink> {
        throw std::runtime_error("factory exploded");
    };
    grid.push_back(cachePoint("after", key, 4));

    SweepEngine engine;
    const SweepResult result = engine.run(grid);

    EXPECT_TRUE(result.points[0].ok);
    EXPECT_TRUE(result.points[2].ok);
    EXPECT_FALSE(result.points[1].ok);
    EXPECT_NE(result.points[1].error.find("factory exploded"),
              std::string::npos)
        << result.points[1].error;
    EXPECT_FALSE(result.allOk());
    // The shared stream was still recorded and consumed by the others.
    EXPECT_GT(result.points[0].traceEvents, 0u);
    EXPECT_EQ(result.points[0].traceEvents,
              result.points[2].traceEvents);
}

/** Sink that dies mid-stream; the fan-out must contain the blast. */
class ExplodingSink : public TraceSink {
  public:
    void onEvent(const TraceEvent &) override {
        if (++seen_ == 100)
            throw std::runtime_error("sink exploded");
    }

  private:
    std::uint64_t seen_ = 0;
};

TEST(Sweep, ThrowingSinkPoisonsOnlyItsPoint)
{
    const TraceKey key = tinyKey("compress", ExecMode::interp());
    std::vector<SweepPoint> grid;
    grid.push_back(cachePoint("good", key, 1));
    grid.push_back(makePoint<ExplodingSink>(
        "dies", key, [] { return std::make_unique<ExplodingSink>(); },
        [](ExplodingSink &, const RecordedRun &) {
            return std::vector<Metric>{};
        }));

    SweepEngine engine;
    const SweepResult result = engine.run(grid);

    EXPECT_TRUE(result.points[0].ok);
    EXPECT_FALSE(result.points[1].ok);
    EXPECT_NE(result.points[1].error.find("sink exploded"),
              std::string::npos)
        << result.points[1].error;

    // The surviving point still matches a live serial run.
    const std::vector<Metric> serial = liveSerialMetrics(grid[0]);
    ASSERT_EQ(result.points[0].metrics.size(), serial.size());
    EXPECT_EQ(result.points[0].metrics[0].value, serial[0].value);
}

TEST(Sweep, RecordingFailurePoisonsOnlyItsGroup)
{
    std::vector<SweepPoint> grid;
    grid.push_back(
        cachePoint("good", tinyKey("compress", ExecMode::interp()), 1));
    TraceKey bogus = tinyKey("compress", ExecMode::interp());
    bogus.workload = "no-such-workload";
    grid.push_back(cachePoint("bad", bogus, 1));

    SweepEngine engine;
    const SweepResult result = engine.run(grid);

    EXPECT_TRUE(result.points[0].ok);
    EXPECT_FALSE(result.points[1].ok);
    EXPECT_NE(result.points[1].error.find("recording failed"),
              std::string::npos)
        << result.points[1].error;
}

TEST(Sweep, RecordsEachStreamOncePerProcess)
{
    const TraceKey key = tinyKey("db", ExecMode::interp());
    std::vector<SweepPoint> grid;
    for (const std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
        grid.push_back(cachePoint(
            "assoc" + std::to_string(assoc), key, assoc));
    }

    SweepEngine engine;
    const SweepResult first = engine.run(grid);
    EXPECT_TRUE(first.allOk());
    EXPECT_EQ(first.traces.recordings, 1u);

    // A second sweep over the same stream is pure replay.
    const SweepResult second = engine.run(grid);
    EXPECT_TRUE(second.allOk());
    EXPECT_EQ(second.traces.recordings, 0u);
    EXPECT_EQ(second.traces.memoryHits, 1u);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(first.points[i].metrics[0].value,
                  second.points[i].metrics[0].value);
    }
}

TEST(Sweep, DiskCacheServesSecondProcess)
{
    TempDir dir("jrs_sweep_disk_cache");
    const TraceKey key = tinyKey("compress", ExecMode::jit());

    TraceCache writer(dir.path);
    const auto recorded = writer.get(key);
    EXPECT_EQ(writer.stats().recordings, 1u);
    ASSERT_NE(recorded->trace, nullptr);
    EXPECT_GT(recorded->trace->size(), 0u);

    // A fresh cache on the same directory stands in for a later
    // process: it must load, not re-record.
    TraceCache reader(dir.path);
    const auto loaded = reader.get(key);
    EXPECT_EQ(reader.stats().recordings, 0u);
    EXPECT_EQ(reader.stats().diskLoads, 1u);

    ASSERT_EQ(loaded->trace->size(), recorded->trace->size());
    EXPECT_EQ(loaded->result.exitValue, recorded->result.exitValue);
    EXPECT_EQ(loaded->result.totalEvents,
              recorded->result.totalEvents);
}

TEST(Sweep, TraceBufferDiskRoundTripIsLossless)
{
    TempDir dir("jrs_sweep_roundtrip");
    std::filesystem::create_directories(dir.path);
    const std::string path = dir.path + "/stream.jrstrace";

    const TraceKey key = tinyKey("compress", ExecMode::jit());
    const RecordedRun run = recordWorkload(key.toRunSpec());
    ASSERT_GT(run.trace->size(), 0u);

    run.trace->save(path);
    const TraceBuffer loaded = TraceBuffer::load(path);

    ASSERT_EQ(loaded.size(), run.trace->size());
    for (std::uint64_t i = 0; i < loaded.size(); ++i) {
        const TraceEvent a = run.trace->at(i);
        const TraceEvent b = loaded.at(i);
        ASSERT_EQ(a.pc, b.pc) << "event " << i;
        ASSERT_EQ(a.mem, b.mem) << "event " << i;
        ASSERT_EQ(a.target, b.target) << "event " << i;
        ASSERT_EQ(a.kind, b.kind) << "event " << i;
        ASSERT_EQ(a.phase, b.phase) << "event " << i;
        ASSERT_EQ(a.taken, b.taken) << "event " << i;
        ASSERT_EQ(a.memSize, b.memSize) << "event " << i;
        ASSERT_EQ(a.rd, b.rd) << "event " << i;
        ASSERT_EQ(a.rs1, b.rs1) << "event " << i;
        ASSERT_EQ(a.rs2, b.rs2) << "event " << i;
    }

    // Replaying the loaded copy gives the same model results as the
    // original stream.
    CacheSink fromOriginal(l1(2), l1(2));
    CacheSink fromDisk(l1(2), l1(2));
    run.trace->replay(fromOriginal);
    loaded.replay(fromDisk);
    EXPECT_EQ(fromOriginal.icache().stats().misses(),
              fromDisk.icache().stats().misses());
    EXPECT_EQ(fromOriginal.dcache().stats().misses(),
              fromDisk.dcache().stats().misses());
}

TEST(Sweep, MalformedGridThrows)
{
    std::vector<SweepPoint> grid(1);
    grid[0].label = "empty";
    grid[0].key = tinyKey("compress", ExecMode::interp());
    SweepEngine engine;
    EXPECT_THROW(engine.run(grid), VmError);
}

} // namespace
} // namespace jrs::sweep
