#include <gtest/gtest.h>

#include "arch/pipeline/pipeline.h"
#include "support/random.h"

namespace jrs {
namespace {

TraceEvent
alu(std::uint64_t pc, Reg rd = kNoReg, Reg rs1 = kNoReg,
    Reg rs2 = kNoReg)
{
    TraceEvent ev;
    ev.pc = pc;
    ev.kind = NKind::IntAlu;
    ev.rd = rd;
    ev.rs1 = rs1;
    ev.rs2 = rs2;
    return ev;
}

TEST(Pipeline, IpcNeverExceedsWidth)
{
    for (std::uint32_t width : {1u, 2u, 4u, 8u}) {
        PipelineConfig cfg;
        cfg.issueWidth = width;
        PipelineSim sim(cfg);
        for (int i = 0; i < 20000; ++i)
            sim.onEvent(alu(0x1000 + (i % 64) * 4, 1));
        EXPECT_LE(sim.ipc(), static_cast<double>(width) + 1e-9);
        EXPECT_GT(sim.ipc(), 0.0);
    }
}

TEST(Pipeline, IndependentStreamScalesWithWidth)
{
    auto run = [](std::uint32_t width) {
        PipelineConfig cfg;
        cfg.issueWidth = width;
        PipelineSim sim(cfg);
        // Independent single-cycle ops on rotating destinations.
        for (int i = 0; i < 50000; ++i) {
            sim.onEvent(alu(0x1000 + (i % 16) * 4,
                            static_cast<Reg>(1 + (i % 8))));
        }
        return sim.ipc();
    };
    const double w1 = run(1);
    const double w4 = run(4);
    EXPECT_GT(w4, 1.8 * w1);
}

TEST(Pipeline, DependenceChainSerializes)
{
    PipelineConfig cfg;
    cfg.issueWidth = 8;
    PipelineSim sim(cfg);
    // Every op reads the previous op's destination.
    for (int i = 0; i < 20000; ++i)
        sim.onEvent(alu(0x1000 + (i % 16) * 4, 1, 1));
    EXPECT_LT(sim.ipc(), 1.3);
}

TEST(Pipeline, MispredictsCostCycles)
{
    auto run = [](bool predictable) {
        PipelineConfig cfg;
        cfg.issueWidth = 4;
        PipelineSim sim(cfg);
        XorShift64 rng(31337);
        for (int i = 0; i < 40000; ++i) {
            sim.onEvent(alu(0x1000, 1));
            TraceEvent br;
            br.pc = 0x1004;
            br.kind = NKind::Branch;
            br.target = 0x1000;
            // predictable: always taken; else genuinely random
            br.taken = predictable || (rng.next() & 1) != 0;
            sim.onEvent(br);
        }
        return sim.ipc();
    };
    EXPECT_GT(run(true), 1.3 * run(false));
}

TEST(Pipeline, IndirectJumpWithRotatingTargetsHurts)
{
    auto run = [](int num_targets) {
        PipelineConfig cfg;
        cfg.issueWidth = 4;
        PipelineSim sim(cfg);
        for (int i = 0; i < 40000; ++i) {
            sim.onEvent(alu(0x2000, 1));
            sim.onEvent(alu(0x2004, 2));
            TraceEvent ij;
            ij.pc = 0x2008;
            ij.kind = NKind::IndirectJump;
            ij.target = 0x3000 + (i % num_targets) * 0x40;
            sim.onEvent(ij);
        }
        return sim.ipc();
    };
    EXPECT_GT(run(1), 1.4 * run(23));
}

TEST(Pipeline, CacheMissLatencyReducesIpc)
{
    auto run = [](bool thrash) {
        PipelineConfig cfg;
        cfg.issueWidth = 4;
        cfg.dcache = {1024, 32, 1, true};
        PipelineSim sim(cfg);
        for (int i = 0; i < 40000; ++i) {
            TraceEvent ld;
            ld.pc = 0x1000 + (i % 8) * 4;
            ld.kind = NKind::Load;
            ld.rd = 1;
            // thrash: streaming addresses; else one hot line
            ld.mem = thrash ? 0x10000 + i * 64 : 0x10000;
            sim.onEvent(ld);
            sim.onEvent(alu(0x1000 + (i % 8) * 4 + 4, 2, 1));
        }
        return sim.ipc();
    };
    EXPECT_GT(run(false), 1.5 * run(true));
}

TEST(Pipeline, StoreToLoadDependence)
{
    PipelineConfig cfg;
    cfg.issueWidth = 8;
    PipelineSim sim(cfg);
    // Alternating store/load to the same address forms a memory chain.
    for (int i = 0; i < 10000; ++i) {
        TraceEvent st;
        st.pc = 0x1000;
        st.kind = NKind::Store;
        st.mem = 0x8000;
        st.rs1 = 1;
        sim.onEvent(st);
        TraceEvent ld;
        ld.pc = 0x1004;
        ld.kind = NKind::Load;
        ld.mem = 0x8000;
        ld.rd = 1;
        sim.onEvent(ld);
    }
    EXPECT_LT(sim.ipc(), 2.0);
}

TEST(Pipeline, CountsInstructionsAndMispredicts)
{
    PipelineSim sim(PipelineConfig{});
    for (int i = 0; i < 100; ++i)
        sim.onEvent(alu(0x1000));
    EXPECT_EQ(sim.instructions(), 100u);
    EXPECT_GT(sim.cycles(), 0u);
    EXPECT_EQ(sim.mispredicts(), 0u);
}

TEST(Pipeline, LongLatencyOpsThrottle)
{
    auto run = [](NKind kind) {
        PipelineConfig cfg;
        cfg.issueWidth = 4;
        PipelineSim sim(cfg);
        for (int i = 0; i < 20000; ++i) {
            TraceEvent ev = alu(0x1000 + (i % 8) * 4, 1, 1);
            ev.kind = kind;  // dependent chain of this kind
            sim.onEvent(ev);
        }
        return sim.ipc();
    };
    EXPECT_GT(run(NKind::IntAlu), 2.0 * run(NKind::IntDiv));
}

} // namespace
} // namespace jrs
