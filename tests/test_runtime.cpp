#include <gtest/gtest.h>

#include "vm/runtime/heap.h"
#include "vm/runtime/value.h"
#include "vm/runtime/vm_error.h"

namespace jrs {
namespace {

TEST(Value, IntRoundTrip)
{
    const Value v = Value::makeInt(-12345);
    EXPECT_EQ(v.tag(), Tag::Int);
    EXPECT_EQ(v.asInt(), -12345);
    EXPECT_EQ(Value::fromSlotBits(v.slotBits(), Tag::Int).asInt(),
              -12345);
    EXPECT_EQ(Value::fromRaw(v.raw(), Tag::Int).asInt(), -12345);
}

TEST(Value, FloatRoundTrip)
{
    const Value v = Value::makeFloat(3.25f);
    EXPECT_EQ(v.tag(), Tag::Float);
    EXPECT_FLOAT_EQ(v.asFloat(), 3.25f);
    EXPECT_FLOAT_EQ(Value::fromSlotBits(v.slotBits(), Tag::Float)
                        .asFloat(),
                    3.25f);
    EXPECT_FLOAT_EQ(Value::fromRaw(v.raw(), Tag::Float).asFloat(),
                    3.25f);
}

TEST(Value, RefRoundTripAndNull)
{
    const SimAddr a = seg::kHeap + 0x1230;
    const Value v = Value::makeRef(a);
    EXPECT_EQ(v.asRef(), a);
    EXPECT_FALSE(v.isNullRef());
    EXPECT_EQ(Value::fromSlotBits(v.slotBits(), Tag::Ref).asRef(), a);

    const Value n = Value::null();
    EXPECT_TRUE(n.isNullRef());
    EXPECT_EQ(n.slotBits(), 0u);
    EXPECT_TRUE(Value::fromSlotBits(0, Tag::Ref).isNullRef());
}

TEST(Value, NegativeIntRawIsSignExtended)
{
    const Value v = Value::makeInt(-1);
    EXPECT_EQ(v.raw(), ~0ull);
}

TEST(Value, Equality)
{
    EXPECT_EQ(Value::makeInt(3), Value::makeInt(3));
    EXPECT_FALSE(Value::makeInt(3) == Value::makeFloat(3.0f));
}

TEST(Heap, ObjectLayout)
{
    Heap h(1 << 20);
    const SimAddr obj = h.allocObject(7, 3);
    EXPECT_TRUE(h.validRef(obj));
    EXPECT_EQ(h.klassOf(obj), 7);
    EXPECT_FALSE(h.isArray(obj));
    EXPECT_EQ(h.lockword(obj), 0u);
    // Fields zeroed and writable.
    for (std::uint16_t s = 0; s < 3; ++s)
        EXPECT_EQ(h.loadU32(Heap::fieldAddr(obj, s)), 0u);
    h.storeU32(Heap::fieldAddr(obj, 1), 0xdeadbeef);
    EXPECT_EQ(h.loadU32(Heap::fieldAddr(obj, 1)), 0xdeadbeef);
}

TEST(Heap, ArrayLayoutAllKinds)
{
    Heap h(1 << 20);
    const SimAddr ia = h.allocArray(ArrayKind::Int, 5);
    EXPECT_TRUE(h.isArray(ia));
    EXPECT_EQ(h.arrayKindOf(ia), ArrayKind::Int);
    EXPECT_EQ(h.arrayLength(ia), 5);
    EXPECT_EQ(h.elemAddr(ia, 2), ia + 12 + 8);

    const SimAddr ca = h.allocArray(ArrayKind::Char, 4);
    EXPECT_EQ(h.elemAddr(ca, 3), ca + 12 + 6);
    h.storeU16(h.elemAddr(ca, 3), 0x4142);
    EXPECT_EQ(h.loadU16(h.elemAddr(ca, 3)), 0x4142);

    const SimAddr ba = h.allocArray(ArrayKind::Byte, 3);
    EXPECT_EQ(h.elemAddr(ba, 2), ba + 12 + 2);
}

TEST(Heap, IndexBounds)
{
    Heap h(1 << 20);
    const SimAddr a = h.allocArray(ArrayKind::Int, 4);
    EXPECT_TRUE(h.indexInBounds(a, 0));
    EXPECT_TRUE(h.indexInBounds(a, 3));
    EXPECT_FALSE(h.indexInBounds(a, 4));
    EXPECT_FALSE(h.indexInBounds(a, -1));
}

TEST(Heap, ZeroLengthArray)
{
    Heap h(1 << 20);
    const SimAddr a = h.allocArray(ArrayKind::Byte, 0);
    EXPECT_EQ(h.arrayLength(a), 0);
    EXPECT_FALSE(h.indexInBounds(a, 0));
}

TEST(Heap, AllocationAccounting)
{
    Heap h(1 << 20);
    const std::size_t before = h.bytesAllocated();
    h.allocObject(1, 4);
    EXPECT_GE(h.bytesAllocated(), before + 8 + 16);
    EXPECT_EQ(h.allocationCount(), 1u);
}

TEST(Heap, AddressesAreEightByteAligned)
{
    Heap h(1 << 20);
    for (int i = 0; i < 16; ++i) {
        const SimAddr a =
            h.allocArray(ArrayKind::Byte, i);  // odd sizes
        EXPECT_EQ(a % 8, 0u);
    }
}

TEST(Heap, ExhaustionThrows)
{
    Heap h(1 << 12);
    EXPECT_THROW(h.allocArray(ArrayKind::Int, 1 << 20), VmError);
}

TEST(Heap, OutOfRangeAccessThrows)
{
    Heap h(1 << 12);
    EXPECT_THROW(h.loadU32(seg::kHeap + (1 << 13)), VmError);
    EXPECT_THROW(h.loadU32(0x1000), VmError);
}

TEST(Heap, NullIsNeverValid)
{
    Heap h(1 << 12);
    EXPECT_FALSE(h.validRef(0));
    EXPECT_FALSE(h.validRef(seg::kHeap));  // reserved prefix
}

TEST(Heap, LockwordRoundTrip)
{
    Heap h(1 << 12);
    const SimAddr o = h.allocObject(0, 0);
    h.setLockword(o, 0x00ffee01u);
    EXPECT_EQ(h.lockword(o), 0x00ffee01u);
    EXPECT_EQ(Heap::lockwordAddr(o), o + 4);
}

TEST(BuiltinEx, ClassIdsAndNames)
{
    EXPECT_EQ(builtinExClassId(BuiltinEx::NullPointer),
              kBuiltinExClassBase);
    EXPECT_STREQ(builtinExName(BuiltinEx::Arithmetic),
                 "ArithmeticException");
    EXPECT_STREQ(builtinExName(BuiltinEx::StackOverflow),
                 "StackOverflowError");
}

} // namespace
} // namespace jrs
