#include <gtest/gtest.h>

#include <cstdio>

#include "arch/cache/cache.h"
#include "arch/mix/instruction_mix.h"
#include "isa/trace_io.h"
#include "vm_test_util.h"

namespace jrs {
namespace {

/** Temp path helper; removed at scope exit. */
struct TempFile {
    TempFile() : path(std::string(::testing::TempDir())
                      + "jrs_trace_test.bin") {}
    ~TempFile() { std::remove(path.c_str()); }
    std::string path;
};

TEST(TraceIo, RoundTripsEveryField)
{
    TempFile tmp;
    TraceEvent in;
    in.pc = 0x1234'5678'9abcull;
    in.mem = 0xdead'beefull;
    in.target = 0x4000'0040ull;
    in.kind = NKind::IndirectCall;
    in.phase = Phase::Translate;
    in.taken = true;
    in.memSize = 8;
    in.rd = 3;
    in.rs1 = 17;
    in.rs2 = kNoReg;
    {
        TraceFileWriter w(tmp.path);
        w.onEvent(in);
        w.onFinish();
        EXPECT_EQ(w.eventsWritten(), 1u);
    }
    RecordingSink rec;
    EXPECT_EQ(replayTraceFile(tmp.path, rec), 1u);
    ASSERT_EQ(rec.events().size(), 1u);
    const TraceEvent &out = rec.events()[0];
    EXPECT_EQ(out.pc, in.pc);
    EXPECT_EQ(out.mem, in.mem);
    EXPECT_EQ(out.target, in.target);
    EXPECT_EQ(out.kind, in.kind);
    EXPECT_EQ(out.phase, in.phase);
    EXPECT_EQ(out.taken, in.taken);
    EXPECT_EQ(out.memSize, in.memSize);
    EXPECT_EQ(out.rd, in.rd);
    EXPECT_EQ(out.rs1, in.rs1);
    EXPECT_EQ(out.rs2, in.rs2);
}

TEST(TraceIo, RecordedRunReplaysToIdenticalAnalysis)
{
    TempFile tmp;
    const Program prog = test::makeProgram([](MethodBuilder &m) {
        m.locals(2);
        m.iconst(40).istore(1);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(1).ifle(done);
        m.iinc(1, -1);
        m.gotoL(loop);
        m.bind(done);
        m.iconst(0).ireturn();
    });

    // Live analysis + recording in one run.
    InstructionMix live_mix;
    CacheSink live_cache({4096, 32, 2, true}, {4096, 32, 2, true});
    {
        TraceFileWriter writer(tmp.path);
        MultiSink multi;
        multi.add(&live_mix);
        multi.add(&live_cache);
        multi.add(&writer);
        (void)test::runProgram(prog, 0,
                               std::make_shared<NeverCompilePolicy>(),
                               &multi);
    }

    // Offline replay must reproduce the analysis exactly.
    InstructionMix replay_mix;
    CacheSink replay_cache({4096, 32, 2, true}, {4096, 32, 2, true});
    MultiSink multi;
    multi.add(&replay_mix);
    multi.add(&replay_cache);
    const std::uint64_t n = replayTraceFile(tmp.path, multi);
    EXPECT_EQ(n, live_mix.total());
    EXPECT_EQ(replay_mix.total(), live_mix.total());
    for (std::size_t k = 0; k < kNumNKinds; ++k) {
        EXPECT_EQ(replay_mix.count(static_cast<NKind>(k)),
                  live_mix.count(static_cast<NKind>(k)));
    }
    EXPECT_EQ(replay_cache.icache().stats().misses(),
              live_cache.icache().stats().misses());
    EXPECT_EQ(replay_cache.dcache().stats().misses(),
              live_cache.dcache().stats().misses());
    EXPECT_EQ(replay_cache.dcache().stats().writeMisses,
              live_cache.dcache().stats().writeMisses);
}

TEST(TraceIo, RejectsMissingFile)
{
    RecordingSink rec;
    EXPECT_THROW(replayTraceFile("/nonexistent/path/x.bin", rec),
                 VmError);
}

TEST(TraceIo, RejectsGarbageFile)
{
    TempFile tmp;
    std::FILE *f = std::fopen(tmp.path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a trace", f);
    std::fclose(f);
    RecordingSink rec;
    EXPECT_THROW(replayTraceFile(tmp.path, rec), VmError);
}

TEST(TraceIo, EmptyTraceReplaysZeroEvents)
{
    TempFile tmp;
    {
        TraceFileWriter w(tmp.path);
        w.onFinish();
    }
    CountingSink count;
    EXPECT_EQ(replayTraceFile(tmp.path, count), 0u);
    EXPECT_EQ(count.total(), 0u);
}

} // namespace
} // namespace jrs
