/**
 * @file
 * Shared helpers for VM tests: build a one-method program from a
 * lambda and run it under a chosen policy.
 */
#ifndef JRS_TESTS_VM_TEST_UTIL_H
#define JRS_TESTS_VM_TEST_UTIL_H

#include <functional>

#include "vm/bytecode/assembler.h"
#include "vm/engine/engine.h"

namespace jrs::test {

/** Build a program whose entry is `T.main(int) -> int`. */
inline Program
makeProgram(const std::function<void(MethodBuilder &)> &fill)
{
    ProgramBuilder pb("test");
    ClassBuilder &cls = pb.cls("T");
    MethodBuilder &m =
        cls.staticMethod("main", {VType::Int}, VType::Int);
    fill(m);
    return pb.finish("T.main");
}

/** Build a program with full control over the ProgramBuilder. */
inline Program
makeProgramFull(const std::function<void(ProgramBuilder &)> &fill,
                const std::string &entry = "T.main")
{
    ProgramBuilder pb("test");
    fill(pb);
    return pb.finish(entry);
}

/** Run a program and return the full result. */
inline RunResult
runProgram(const Program &prog, std::int32_t arg,
           std::shared_ptr<CompilationPolicy> policy = nullptr,
           TraceSink *sink = nullptr,
           SyncKind sync = SyncKind::ThinLock)
{
    EngineConfig cfg;
    cfg.policy = policy ? std::move(policy)
                        : std::make_shared<NeverCompilePolicy>();
    cfg.sink = sink;
    cfg.syncKind = sync;
    ExecutionEngine engine(prog, cfg);
    return engine.run(arg);
}

/** Interpret `T.main(arg)` and return its value. */
inline std::int32_t
interpret(const std::function<void(MethodBuilder &)> &fill,
          std::int32_t arg = 0)
{
    const Program prog = makeProgram(fill);
    const RunResult r = runProgram(prog, arg);
    if (!r.completed) {
        throw VmError(std::string("test program failed: ")
                      + (r.uncaughtException ? r.uncaughtException
                                             : "?"));
    }
    return r.exitValue;
}

/** JIT-compile and run `T.main(arg)`. */
inline std::int32_t
jitRun(const std::function<void(MethodBuilder &)> &fill,
       std::int32_t arg = 0)
{
    const Program prog = makeProgram(fill);
    const RunResult r = runProgram(
        prog, arg, std::make_shared<AlwaysCompilePolicy>());
    if (!r.completed) {
        throw VmError(std::string("test program failed: ")
                      + (r.uncaughtException ? r.uncaughtException
                                             : "?"));
    }
    return r.exitValue;
}

/** Run under both engines and require identical results. */
inline std::int32_t
bothModes(const std::function<void(MethodBuilder &)> &fill,
          std::int32_t arg = 0)
{
    const std::int32_t a = interpret(fill, arg);
    const std::int32_t b = jitRun(fill, arg);
    if (a != b)
        throw VmError("interp/JIT divergence in test program");
    return a;
}

} // namespace jrs::test

#endif // JRS_TESTS_VM_TEST_UTIL_H
