/**
 * @file
 * jrs::check conformance suite (ctest label: check).
 *
 * Four layers:
 *  - a fixed regression corpus of arithmetic/bounds edge cases that
 *    must behave identically under the interpreter and the JIT
 *    (INT32_MIN div/rem -1, shift masking, overflow wrap, f2i
 *    saturation, div-by-zero and arraycopy guest exceptions);
 *  - the differential runner + generator: determinism, mask
 *    stability, a fuzz smoke campaign, all workloads across modes;
 *  - the trace-invariant checker: every workload's interp and jit
 *    streams are clean and conserve events, plus synthetic bad-event
 *    unit tests;
 *  - the on-disk linter against a real sweep trace cache, including
 *    corrupt/missing sidecars.
 */
#include <gtest/gtest.h>

#include <climits>
#include <filesystem>
#include <fstream>

#include "check/differential.h"
#include "check/fuzz.h"
#include "check/invariants.h"
#include "check/progen.h"
#include "isa/address_map.h"
#include "isa/trace_buffer.h"
#include "obs/attribution.h"
#include "sweep/trace_cache.h"
#include "vm/bytecode/assembler.h"
#include "vm/engine/engine.h"
#include "vm/engine/policy.h"
#include "workloads/workload.h"

using namespace jrs;
namespace fs = std::filesystem;

namespace {

/** Build a one-method program: `Main.run(int) -> int` with @p body. */
template <typename Body>
Program
buildIntProgram(Body &&body)
{
    ProgramBuilder pb("check-test");
    ClassBuilder &main = pb.cls("Main");
    MethodBuilder &run =
        main.staticMethod("run", {VType::Int}, VType::Int);
    run.locals(4);
    body(run);
    return pb.finish("Main.run");
}

struct ModeRun {
    RunResult result;
    check::VmStateDigest digest;
};

ModeRun
runMode(const Program &prog, check::DiffMode mode, std::int32_t arg)
{
    ExecutionEngine engine(prog, check::makeDiffConfig(mode));
    ModeRun r;
    r.result = engine.run(arg);
    r.digest = check::captureDigest(engine, r.result);
    return r;
}

/**
 * Run under interp and jit, require identical digests and a clean
 * completion, and return the agreed exit value.
 */
std::int32_t
exitBoth(const Program &prog, std::int32_t arg = 0)
{
    const ModeRun i = runMode(prog, check::DiffMode::Interp, arg);
    const ModeRun j = runMode(prog, check::DiffMode::Jit, arg);
    EXPECT_EQ(check::describeDigestDiff("interp", i.digest, "jit",
                                        j.digest),
              "");
    EXPECT_TRUE(i.result.completed);
    EXPECT_TRUE(i.result.hasExitValue);
    return i.result.exitValue;
}

} // namespace

// ---------------------------------------------------------------------
// Arithmetic edge-case regression corpus
// ---------------------------------------------------------------------

TEST(ArithmeticEdges, Int32MinDivMinusOneWraps)
{
    const Program p = buildIntProgram([](MethodBuilder &m) {
        m.iconst(INT32_MIN).iconst(-1).idiv().ireturn();
    });
    EXPECT_EQ(exitBoth(p), INT32_MIN);
}

TEST(ArithmeticEdges, Int32MinRemMinusOneIsZero)
{
    const Program p = buildIntProgram([](MethodBuilder &m) {
        m.iconst(INT32_MIN).iconst(-1).irem().ireturn();
    });
    EXPECT_EQ(exitBoth(p), 0);
}

TEST(ArithmeticEdges, ShiftAmountsMaskToFiveBits)
{
    const Program shl = buildIntProgram([](MethodBuilder &m) {
        m.iconst(1).iconst(33).ishl().ireturn();
    });
    EXPECT_EQ(exitBoth(shl), 2);

    const Program shr = buildIntProgram([](MethodBuilder &m) {
        m.iconst(-8).iconst(33).ishr().ireturn();
    });
    EXPECT_EQ(exitBoth(shr), -4);

    const Program ushr = buildIntProgram([](MethodBuilder &m) {
        m.iconst(-8).iconst(33).iushr().ireturn();
    });
    EXPECT_EQ(exitBoth(ushr), 0x7FFFFFFC);
}

TEST(ArithmeticEdges, AddMulOverflowWrap)
{
    const Program add = buildIntProgram([](MethodBuilder &m) {
        m.iconst(INT32_MAX).iconst(1).iadd().ireturn();
    });
    EXPECT_EQ(exitBoth(add), INT32_MIN);

    const Program mul = buildIntProgram([](MethodBuilder &m) {
        m.iconst(65537).iconst(65537).imul().ireturn();
    });
    EXPECT_EQ(exitBoth(mul), 131073);
}

TEST(ArithmeticEdges, F2iSaturatesAndNanIsZero)
{
    const Program hi = buildIntProgram([](MethodBuilder &m) {
        m.fconst(3.0e9f).f2i().ireturn();
    });
    EXPECT_EQ(exitBoth(hi), INT32_MAX);

    const Program lo = buildIntProgram([](MethodBuilder &m) {
        m.fconst(-3.0e9f).f2i().ireturn();
    });
    EXPECT_EQ(exitBoth(lo), INT32_MIN);

    const Program nan = buildIntProgram([](MethodBuilder &m) {
        m.fconst(0.0f).fconst(0.0f).fdiv().f2i().ireturn();
    });
    EXPECT_EQ(exitBoth(nan), 0);
}

TEST(ArithmeticEdges, DivByZeroThrowsIdenticallyInBothModes)
{
    const Program p = buildIntProgram([](MethodBuilder &m) {
        m.iload(0).iconst(0).idiv().ireturn();
    });
    const ModeRun i = runMode(p, check::DiffMode::Interp, 7);
    const ModeRun j = runMode(p, check::DiffMode::Jit, 7);
    EXPECT_FALSE(i.result.completed);
    ASSERT_NE(i.result.uncaughtException, nullptr);
    ASSERT_NE(j.result.uncaughtException, nullptr);
    EXPECT_STREQ(i.result.uncaughtException, "ArithmeticException");
    EXPECT_STREQ(j.result.uncaughtException, "ArithmeticException");
    EXPECT_EQ(i.result.guestThrows, 1u);
    EXPECT_EQ(check::describeDigestDiff("interp", i.digest, "jit",
                                        j.digest),
              "");
}

TEST(ArithmeticEdges, RemByZeroCaughtInBothModes)
{
    const Program p = buildIntProgram([](MethodBuilder &m) {
        const Label start = m.newLabel();
        const Label end = m.newLabel();
        const Label handler = m.newLabel();
        m.bind(start).iload(0).iconst(0).irem().ireturn();
        m.bind(end);
        m.bind(handler).pop().iconst(42).ireturn();
        m.addHandler(start, end, handler);
    });
    EXPECT_EQ(exitBoth(p, 9), 42);
}

// ---------------------------------------------------------------------
// arrayCopy bounds regression (int32-overflow fix)
// ---------------------------------------------------------------------

namespace {

/** arraycopy between two fresh int[4]s; 42 = caught AIOOBE, 0 = ok. */
Program
buildCopyProgram(std::int32_t src_pos, std::int32_t dst_pos,
                 std::int32_t len)
{
    return buildIntProgram([&](MethodBuilder &m) {
        const Label start = m.newLabel();
        const Label end = m.newLabel();
        const Label handler = m.newLabel();
        m.iconst(4).newArray(ArrayKind::Int).astore(1);
        m.iconst(4).newArray(ArrayKind::Int).astore(2);
        m.bind(start);
        m.aload(1)
            .iconst(src_pos)
            .aload(2)
            .iconst(dst_pos)
            .iconst(len)
            .intrinsic(IntrinsicId::ArrayCopy);
        m.bind(end);
        m.iconst(0).ireturn();
        m.bind(handler).pop().iconst(42).ireturn();
        m.addHandler(start, end, handler);
    });
}

} // namespace

TEST(ArrayCopyBounds, PositionNearIntMaxThrowsInsteadOfWrapping)
{
    // src_pos + len == INT32_MAX - 1 + 2 wraps negative in 32 bits;
    // the check must still reject it (guest AIOOBE, not a wild read).
    EXPECT_EQ(exitBoth(buildCopyProgram(INT32_MAX - 1, 0, 2)), 42);
    EXPECT_EQ(exitBoth(buildCopyProgram(0, INT32_MAX - 1, 2)), 42);
}

TEST(ArrayCopyBounds, ExactAndEmptyRanges)
{
    EXPECT_EQ(exitBoth(buildCopyProgram(2, 0, 2)), 0);   // fits exactly
    EXPECT_EQ(exitBoth(buildCopyProgram(4, 0, 0)), 0);   // empty at end
    EXPECT_EQ(exitBoth(buildCopyProgram(5, 0, 0)), 42);  // pos past end
    EXPECT_EQ(exitBoth(buildCopyProgram(3, 0, 2)), 42);  // one too far
    EXPECT_EQ(exitBoth(buildCopyProgram(0, 0, -1)), 42); // negative len
}

// ---------------------------------------------------------------------
// Oracle decisions with asymmetric profile tables
// ---------------------------------------------------------------------

TEST(OracleDecisions, AsymmetricTablesKeepEveryMethod)
{
    // Interp run saw 3 methods; jit run's table only covers 1 (e.g. a
    // method never reached compilation). Decisions must still cover
    // all 3, treating the missing jit profile as zero cost.
    ProfileTable interp_run(3);
    ProfileTable jit_run(1);

    interp_run.of(0).invocations = 5;
    interp_run.of(0).interpEvents = 1000;
    jit_run.of(0).invocations = 5;
    jit_run.of(0).translateEvents = 400;
    jit_run.of(0).nativeEvents = 200;

    interp_run.of(1).invocations = 0;  // never invoked

    interp_run.of(2).invocations = 2;
    interp_run.of(2).interpEvents = 300;  // no jit row at all

    const std::vector<bool> compile =
        computeOracleDecisions(interp_run, jit_run);
    ASSERT_EQ(compile.size(), 3u);
    EXPECT_TRUE(compile[0]);   // 600 < 1000
    EXPECT_FALSE(compile[1]);  // never invoked
    // No JIT-run evidence for method 2: its jit_cost reads as zero,
    // which used to win the comparison unconditionally. The oracle now
    // refuses to compile without evidence.
    EXPECT_FALSE(compile[2]);
}

TEST(OracleDecisions, JitTableLargerThanInterp)
{
    ProfileTable interp_run(1);
    ProfileTable jit_run(2);
    interp_run.of(0).invocations = 1;
    interp_run.of(0).interpEvents = 10;
    jit_run.of(0).translateEvents = 50;
    jit_run.of(1).translateEvents = 50;

    const std::vector<bool> compile =
        computeOracleDecisions(interp_run, jit_run);
    ASSERT_EQ(compile.size(), 2u);
    EXPECT_FALSE(compile[0]);  // 50 >= 10
    EXPECT_FALSE(compile[1]);  // no interp invocations
}

// ---------------------------------------------------------------------
// Generator: determinism and mask stability
// ---------------------------------------------------------------------

TEST(Progen, DeterministicAcrossCalls)
{
    const check::GenOptions opts;
    const Program a = check::generateProgram(42, opts);
    const Program b = check::generateProgram(42, opts);
    ASSERT_EQ(a.methods.size(), b.methods.size());
    for (std::size_t i = 0; i < a.methods.size(); ++i) {
        EXPECT_EQ(a.methods[i].name, b.methods[i].name);
        EXPECT_EQ(a.methods[i].code, b.methods[i].code) << a.methods[i].name;
    }
}

TEST(Progen, DifferentSeedsDiffer)
{
    const check::GenOptions opts;
    const Program a = check::generateProgram(1, opts);
    const Program b = check::generateProgram(2, opts);
    bool any_differ = a.methods.size() != b.methods.size();
    for (std::size_t i = 0;
         !any_differ && i < a.methods.size(); ++i)
        any_differ = a.methods[i].code != b.methods[i].code;
    EXPECT_TRUE(any_differ);
}

TEST(Progen, MaskFiltersEntryButNotKernels)
{
    const check::GenOptions opts;
    const Program full = check::generateProgram(7, opts);
    const Program masked = check::generateProgram(7, opts, 0b101);

    // Kernel bodies must be byte-identical under any mask — that is
    // what makes mask bisection a sound minimizer.
    for (const Method &m : masked.methods) {
        if (m.name.rfind("G.k", 0) != 0)
            continue;
        bool found = false;
        for (const Method &f : full.methods) {
            if (f.name == m.name) {
                EXPECT_EQ(f.code, m.code) << m.name;
                found = true;
            }
        }
        EXPECT_TRUE(found) << m.name;
    }
}

// ---------------------------------------------------------------------
// Differential runner: workloads + fuzz smoke
// ---------------------------------------------------------------------

TEST(Differential, AllWorkloadsAgreeAcrossModes)
{
    check::DifferentialRunner runner;
    for (const WorkloadInfo &info : allWorkloads()) {
        const check::DiffResult r = runner.checkWorkload(info, 0);
        EXPECT_TRUE(r.agreed) << r.report;
    }
}

TEST(Differential, FuzzSmoke)
{
    check::FuzzOptions opts;
    opts.seedBase = 1000;
    opts.numSeeds = 40;
    opts.jobs = 4;
    const check::FuzzReport report = check::runFuzzCampaign(opts);
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(report.seedsRun, 40u);
}

// ---------------------------------------------------------------------
// Trace invariants: every workload, interp + jit
// ---------------------------------------------------------------------

namespace {

struct InvariantCase {
    const char *workload;
    check::DiffMode mode;
};

std::string
invariantCaseName(const testing::TestParamInfo<InvariantCase> &info)
{
    return std::string(info.param.workload) + "_"
        + check::diffModeName(info.param.mode);
}

class TraceInvariants : public testing::TestWithParam<InvariantCase> {};

} // namespace

TEST_P(TraceInvariants, StreamIsCleanAndConserves)
{
    const InvariantCase &c = GetParam();
    const WorkloadInfo *info = findWorkload(c.workload);
    ASSERT_NE(info, nullptr);

    const Program prog = info->build();
    check::TraceInvariantChecker checker;
    EngineConfig cfg = check::makeDiffConfig(c.mode);
    cfg.sink = &checker;
    ExecutionEngine engine(prog, cfg);
    const RunResult result = engine.run(info->tinyArg);

    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(checker.ok()) << checker.report();
    EXPECT_EQ(check::checkRunConservation(checker, result), "");
    EXPECT_EQ(check::checkProfileConservation(result), "");
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, TraceInvariants,
    testing::Values(
        InvariantCase{"hello", check::DiffMode::Interp},
        InvariantCase{"hello", check::DiffMode::Jit},
        InvariantCase{"compress", check::DiffMode::Interp},
        InvariantCase{"compress", check::DiffMode::Jit},
        InvariantCase{"jess", check::DiffMode::Interp},
        InvariantCase{"jess", check::DiffMode::Jit},
        InvariantCase{"db", check::DiffMode::Interp},
        InvariantCase{"db", check::DiffMode::Jit},
        InvariantCase{"javac", check::DiffMode::Interp},
        InvariantCase{"javac", check::DiffMode::Jit},
        InvariantCase{"mpeg", check::DiffMode::Interp},
        InvariantCase{"mpeg", check::DiffMode::Jit},
        InvariantCase{"mtrt", check::DiffMode::Interp},
        InvariantCase{"mtrt", check::DiffMode::Jit},
        InvariantCase{"jack", check::DiffMode::Interp},
        InvariantCase{"jack", check::DiffMode::Jit}),
    invariantCaseName);

TEST(TraceInvariantsUnit, SyntheticViolationsAreCaught)
{
    using check::TraceInvariantChecker;

    // A well-formed interpreter ALU event is clean.
    {
        TraceInvariantChecker ok;
        TraceEvent ev;
        ev.pc = seg::kInterpCode + 0x40;
        ev.kind = NKind::IntAlu;
        ev.phase = Phase::Interpret;
        ok.onEvent(ev);
        EXPECT_TRUE(ok.ok()) << ok.report();
        EXPECT_EQ(ok.eventCount(), 1u);
    }

    auto expectFlagged = [](TraceEvent ev, const char *why) {
        TraceInvariantChecker c;
        c.onEvent(ev);
        EXPECT_FALSE(c.ok()) << why;
        EXPECT_FALSE(c.report().empty()) << why;
    };

    TraceEvent ev;
    ev.pc = seg::kInterpCode + 4;
    ev.kind = NKind::IntAlu;
    ev.phase = Phase::Interpret;

    TraceEvent bad = ev;
    bad.pc = seg::kHeap + 4;
    expectFlagged(bad, "pc outside the phase's home segment");

    bad = ev;
    bad.kind = NKind::Load;
    bad.memSize = 4;  // mem left null
    expectFlagged(bad, "load with null effective address");

    bad = ev;
    bad.kind = NKind::Store;
    bad.mem = seg::kHeap + 8;
    bad.memSize = 3;
    expectFlagged(bad, "non-power-of-two access size");

    bad = ev;
    bad.kind = NKind::Load;
    bad.mem = 0xdead;  // below every segment
    bad.memSize = 4;
    expectFlagged(bad, "access outside every data region");

    bad = ev;
    bad.taken = true;
    expectFlagged(bad, "ALU marked taken");

    bad = ev;
    bad.mem = seg::kHeap;
    expectFlagged(bad, "ALU with an effective address");

    bad = ev;
    bad.kind = NKind::Call;
    bad.taken = true;
    bad.target = 0;
    expectFlagged(bad, "call with null target");

    bad = ev;
    bad.kind = NKind::Jump;
    bad.target = seg::kInterpCode;
    bad.taken = false;
    expectFlagged(bad, "jump marked not-taken");

    bad = ev;
    bad.rd = 40;
    expectFlagged(bad, "register id out of range");

    bad = ev;
    bad.phase = static_cast<Phase>(7);
    expectFlagged(bad, "illegal phase tag");

    // Branches legitimately carry either outcome.
    {
        TraceInvariantChecker c;
        TraceEvent br = ev;
        br.kind = NKind::Branch;
        br.target = seg::kInterpCode + 8;
        br.taken = false;
        c.onEvent(br);
        br.taken = true;
        c.onEvent(br);
        EXPECT_TRUE(c.ok()) << c.report();
    }
}

// ---------------------------------------------------------------------
// Profile-vs-attribution join
// ---------------------------------------------------------------------

TEST(Attribution, ProfileMatchesTraceJoin)
{
    const WorkloadInfo *info = findWorkload("compress");
    ASSERT_NE(info, nullptr);

    struct Case {
        check::DiffMode mode;
        std::uint64_t slack;
    };
    // Interp needs only the frame-boundary margin; compilation also
    // shifts translator-prologue events between adjacent compilations.
    for (const Case c : {Case{check::DiffMode::Interp, 16},
                         Case{check::DiffMode::Jit, 96}}) {
        const Program prog = info->build();
        TraceBuffer trace;
        EngineConfig cfg = check::makeDiffConfig(c.mode);
        cfg.sink = &trace;
        ExecutionEngine engine(prog, cfg);
        const RunResult result = engine.run(info->tinyArg);
        ASSERT_TRUE(result.completed);

        const obs::MethodMap map =
            obs::MethodMap::forRun(engine.registry(),
                                   engine.codeCache());
        EXPECT_EQ(check::checkProfileAttribution(trace, map, prog,
                                                 result, c.slack),
                  "")
            << check::diffModeName(c.mode);
    }
}

// ---------------------------------------------------------------------
// On-disk trace linting (sweep cache layout + sidecars)
// ---------------------------------------------------------------------

namespace {

class LintTrace : public testing::Test {
  protected:
    void SetUp() override {
        // Per-test directory: ctest runs each case as its own process,
        // possibly concurrently, so a shared path would let one test's
        // TearDown delete another's files mid-run.
        dir_ = fs::temp_directory_path()
            / (std::string("jrs-check-lint-test-")
               + testing::UnitTest::GetInstance()
                     ->current_test_info()->name());
        fs::remove_all(dir_);
        sweep::TraceCache cache(dir_.string());
        cache.get(sweep::traceKey("hello", sweep::ExecMode::interp()));

        for (const auto &e : fs::directory_iterator(dir_)) {
            const std::string name = e.path().filename().string();
            if (name.size() > 9
                && name.compare(name.size() - 9, 9, ".jrstrace") == 0)
                trace_ = e.path().string();
        }
        ASSERT_FALSE(trace_.empty());
    }

    void TearDown() override { fs::remove_all(dir_); }

    fs::path dir_;
    std::string trace_;
};

} // namespace

TEST_F(LintTrace, FreshCacheIsClean)
{
    const auto results = check::lintCacheDir(dir_.string());
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].second.ok) << results[0].second.error;
    EXPECT_GT(results[0].second.events, 0u);
}

TEST_F(LintTrace, CorruptMethodsSidecarIsACleanError)
{
    {
        std::ofstream f(trace_ + ".methods", std::ios::trunc);
        f << "this is not a hex range line\n";
    }
    const check::LintResult r = check::lintTraceFile(trace_, true);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find(".methods"), std::string::npos) << r.error;

    // Without sidecar checking the stream itself is still fine.
    const check::LintResult raw = check::lintTraceFile(trace_, false);
    EXPECT_TRUE(raw.ok) << raw.error;
}

TEST_F(LintTrace, MissingMetaSidecarIsACleanError)
{
    fs::remove(trace_ + ".meta");
    const check::LintResult r = check::lintTraceFile(trace_, true);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find(".meta"), std::string::npos) << r.error;
}

TEST_F(LintTrace, MetaEventCountMismatchIsDetected)
{
    const std::string key =
        fs::path(trace_).filename().string().substr(
            0, fs::path(trace_).filename().string().find(".jrstrace"));
    {
        std::ofstream f(trace_ + ".meta", std::ios::trunc);
        f << "key=" << key << "\nexit=0\nevents=1\n";
    }
    const check::LintResult r = check::lintTraceFile(trace_, true);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("events"), std::string::npos) << r.error;
}

TEST_F(LintTrace, GarbageFileFailsHeaderCheck)
{
    const std::string bogus = (dir_ / "bogus.jrstrace").string();
    {
        std::ofstream f(bogus, std::ios::trunc);
        f << "garbage";
    }
    const check::LintResult r = check::lintTraceFile(bogus, false);
    EXPECT_FALSE(r.ok);

    const check::LintResult missing =
        check::lintTraceFile((dir_ / "nope.jrstrace").string(), false);
    EXPECT_FALSE(missing.ok);
}
