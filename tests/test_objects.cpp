/**
 * Objects, fields, statics, method calls (static / special / virtual
 * dispatch incl. overriding), exceptions and guest threads. All
 * scenarios execute under interpreter and JIT and must agree.
 */
#include <gtest/gtest.h>

#include "vm_test_util.h"

namespace jrs {
namespace {

std::int32_t
runBoth(const std::function<void(ProgramBuilder &)> &fill,
        std::int32_t arg = 0)
{
    const Program p1 = test::makeProgramFull(fill);
    const RunResult a = test::runProgram(
        p1, arg, std::make_shared<NeverCompilePolicy>());
    EXPECT_TRUE(a.completed)
        << (a.uncaughtException ? a.uncaughtException : "?");
    const Program p2 = test::makeProgramFull(fill);
    const RunResult b = test::runProgram(
        p2, arg, std::make_shared<AlwaysCompilePolicy>());
    EXPECT_TRUE(b.completed)
        << (b.uncaughtException ? b.uncaughtException : "?");
    EXPECT_EQ(a.exitValue, b.exitValue) << "interp/JIT divergence";
    return a.exitValue;
}

TEST(Objects, FieldsReadWrite)
{
    EXPECT_EQ(runBoth([](ProgramBuilder &pb) {
        ClassBuilder &p = pb.cls("Point");
        p.field("x");
        p.field("y");
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.locals(2);
        m.newObject("Point").astore(1);
        m.aload(1).iconst(11).putFieldI("Point.x");
        m.aload(1).iconst(31).putFieldI("Point.y");
        m.aload(1).getFieldI("Point.x")
            .aload(1).getFieldI("Point.y").iadd().ireturn();
    }), 42);
}

TEST(Objects, FloatAndRefFields)
{
    EXPECT_EQ(runBoth([](ProgramBuilder &pb) {
        ClassBuilder &n = pb.cls("Node");
        n.field("w");
        n.field("next");
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.locals(3);
        m.newObject("Node").astore(1);
        m.newObject("Node").astore(2);
        m.aload(1).fconst(2.5f).putFieldF("Node.w");
        m.aload(2).fconst(1.5f).putFieldF("Node.w");
        m.aload(1).aload(2).putFieldA("Node.next");
        // n1.w + n1.next.w = 4.0
        m.aload(1).getFieldF("Node.w")
            .aload(1).getFieldA("Node.next").getFieldF("Node.w")
            .fadd().f2i().ireturn();
    }), 4);
}

TEST(Objects, InheritedFieldsShareLayout)
{
    EXPECT_EQ(runBoth([](ProgramBuilder &pb) {
        ClassBuilder &base = pb.cls("Base");
        base.field("a");
        ClassBuilder &derived = pb.cls("Derived", "Base");
        derived.field("b");
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.locals(2);
        m.newObject("Derived").astore(1);
        m.aload(1).iconst(5).putFieldI("Base.a");
        m.aload(1).iconst(7).putFieldI("Derived.b");
        m.aload(1).getFieldI("Derived.a")  // inherited slot via Derived
            .aload(1).getFieldI("Derived.b").imul().ireturn();
    }), 35);
}

TEST(Statics, AllTypes)
{
    EXPECT_EQ(runBoth([](ProgramBuilder &pb) {
        pb.staticSlot("si", VType::Int);
        pb.staticSlot("sf", VType::Float);
        pb.staticSlot("sa", VType::Ref);
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.iconst(40).putStaticI("si");
        m.fconst(1.5f).putStaticF("sf");
        m.iconst(3).newArray(ArrayKind::Int).putStaticA("sa");
        m.getStaticA("sa").iconst(0).iconst(100).iastore();
        m.getStaticI("si")
            .getStaticF("sf").fconst(2.0f).fmul().f2i().iadd()
            .getStaticA("sa").iconst(0).iaload().iadd()
            .ireturn();
    }), 143);
}

TEST(Calls, StaticCallChain)
{
    EXPECT_EQ(runBoth([](ProgramBuilder &pb) {
        ClassBuilder &t = pb.cls("T");
        {
            MethodBuilder &m = t.staticMethod(
                "twice", {VType::Int}, VType::Int);
            m.iload(0).iconst(2).imul().ireturn();
        }
        {
            MethodBuilder &m = t.staticMethod(
                "addSq", {VType::Int, VType::Int}, VType::Int);
            m.iload(0).iload(0).imul()
                .iload(1).iload(1).imul().iadd().ireturn();
        }
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.iload(0).invokeStatic("T.twice")
            .iconst(3).invokeStatic("T.addSq").ireturn();
    }, 2), 25);
}

TEST(Calls, RecursionFactorial)
{
    EXPECT_EQ(runBoth([](ProgramBuilder &pb) {
        ClassBuilder &t = pb.cls("T");
        {
            MethodBuilder &m =
                t.staticMethod("fact", {VType::Int}, VType::Int);
            Label base = m.newLabel();
            m.iload(0).iconst(1).ifIcmple(base);
            m.iload(0)
                .iload(0).iconst(1).isub().invokeStatic("T.fact")
                .imul().ireturn();
            m.bind(base);
            m.iconst(1).ireturn();
        }
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.iload(0).invokeStatic("T.fact").ireturn();
    }, 10), 3628800);
}

TEST(Calls, MutualRecursion)
{
    EXPECT_EQ(runBoth([](ProgramBuilder &pb) {
        ClassBuilder &t = pb.cls("T");
        {
            MethodBuilder &m =
                t.staticMethod("isEven", {VType::Int}, VType::Int);
            Label z = m.newLabel();
            m.iload(0).ifeq(z);
            m.iload(0).iconst(1).isub().invokeStatic("T.isOdd")
                .ireturn();
            m.bind(z);
            m.iconst(1).ireturn();
        }
        {
            MethodBuilder &m =
                t.staticMethod("isOdd", {VType::Int}, VType::Int);
            Label z = m.newLabel();
            m.iload(0).ifeq(z);
            m.iload(0).iconst(1).isub().invokeStatic("T.isEven")
                .ireturn();
            m.bind(z);
            m.iconst(0).ireturn();
        }
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.iload(0).invokeStatic("T.isEven").ireturn();
    }, 17), 0);
}

TEST(Calls, VirtualDispatchPicksOverride)
{
    EXPECT_EQ(runBoth([](ProgramBuilder &pb) {
        ClassBuilder &animal = pb.cls("Animal");
        {
            MethodBuilder &m =
                animal.virtualMethod("noise", {}, VType::Int);
            m.iconst(1).ireturn();
        }
        ClassBuilder &dog = pb.cls("Dog", "Animal");
        {
            MethodBuilder &m =
                dog.virtualMethod("noise", {}, VType::Int);
            m.iconst(2).ireturn();
        }
        ClassBuilder &puppy = pb.cls("Puppy", "Dog");
        {
            MethodBuilder &m =
                puppy.virtualMethod("noise", {}, VType::Int);
            m.iconst(3).ireturn();
        }
        ClassBuilder &cat = pb.cls("Cat", "Animal");  // inherits noise
        (void)cat;
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.locals(2);
        // animal + dog*10 + puppy*100 + cat*1000
        m.newObject("Animal").invokeVirtual("Animal.noise");
        m.newObject("Dog").invokeVirtual("Animal.noise")
            .iconst(10).imul().iadd();
        m.newObject("Puppy").invokeVirtual("Animal.noise")
            .iconst(100).imul().iadd();
        m.newObject("Cat").invokeVirtual("Animal.noise")
            .iconst(1000).imul().iadd();
        m.ireturn();
    }), 1 + 20 + 300 + 1000);
}

TEST(Calls, VirtualWithArgsAndFields)
{
    EXPECT_EQ(runBoth([](ProgramBuilder &pb) {
        ClassBuilder &acc = pb.cls("Acc");
        acc.field("total");
        {
            MethodBuilder &m =
                acc.virtualMethod("bump", {VType::Int}, VType::Int);
            m.aload(0)
                .aload(0).getFieldI("Acc.total").iload(1).iadd()
                .putFieldI("Acc.total");
            m.aload(0).getFieldI("Acc.total").ireturn();
        }
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.locals(2);
        m.newObject("Acc").astore(1);
        m.aload(1).iconst(5).invokeVirtual("Acc.bump").pop();
        m.aload(1).iconst(7).invokeVirtual("Acc.bump").ireturn();
    }), 12);
}

TEST(Calls, SpecialConstructorPattern)
{
    EXPECT_EQ(runBoth([](ProgramBuilder &pb) {
        ClassBuilder &box = pb.cls("Box");
        box.field("v");
        {
            MethodBuilder &m =
                box.specialMethod("init", {VType::Int}, VType::Void);
            m.aload(0).iload(1).iconst(1).iadd().putFieldI("Box.v");
            m.returnVoid();
        }
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.newObject("Box").dup().iload(0).invokeSpecial("Box.init")
            .getFieldI("Box.v").ireturn();
    }, 41), 42);
}

TEST(Exceptions, BuiltinNullPointerCaught)
{
    EXPECT_EQ(runBoth([](ProgramBuilder &pb) {
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        Label ts = m.newLabel(), te = m.newLabel(), h = m.newLabel();
        m.bind(ts);
        m.aconstNull().getFieldI("T.dummy_unused_field_0");
        m.bind(te);
        m.ireturn();
        m.bind(h);
        m.pop();
        m.iconst(-42).ireturn();
        m.addHandler(ts, te, h);
        t.field("dummy_unused_field_0");
    }), -42);
}

TEST(Exceptions, BoundsCaught)
{
    EXPECT_EQ(runBoth([](ProgramBuilder &pb) {
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.locals(2);
        Label ts = m.newLabel(), te = m.newLabel(), h = m.newLabel();
        m.iconst(4).newArray(ArrayKind::Int).astore(1);
        m.bind(ts);
        m.aload(1).iload(0).iaload();
        m.bind(te);
        m.ireturn();
        m.bind(h);
        m.pop();
        m.iconst(-1).ireturn();
        m.addHandler(ts, te, h);
    }, 9), -1);
}

TEST(Exceptions, DivideByZeroCaught)
{
    EXPECT_EQ(runBoth([](ProgramBuilder &pb) {
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        Label ts = m.newLabel(), te = m.newLabel(), h = m.newLabel();
        m.bind(ts);
        m.iconst(10).iload(0).idiv();
        m.bind(te);
        m.ireturn();
        m.bind(h);
        m.pop();
        m.iconst(-7).ireturn();
        m.addHandler(ts, te, h);
    }, 0), -7);
}

TEST(Exceptions, UserThrowCaughtByType)
{
    EXPECT_EQ(runBoth([](ProgramBuilder &pb) {
        ClassBuilder &exa = pb.cls("ExA");
        exa.field("code");
        ClassBuilder &exb = pb.cls("ExB", "ExA");
        (void)exb;
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.locals(2);
        Label ts = m.newLabel(), te = m.newLabel();
        Label h = m.newLabel();
        m.bind(ts);
        // throw ExB (subclass), catch as ExA
        m.newObject("ExB").dup().iconst(17).putFieldI("ExA.code");
        m.athrow();
        m.bind(te);
        m.iconst(0).ireturn();
        m.bind(h);
        m.astore(1);
        m.aload(1).getFieldI("ExA.code").ireturn();
        m.addHandler(ts, te, h, "ExA");
    }), 17);
}

TEST(Exceptions, WrongTypeNotCaughtLocally)
{
    // Handler for ExB must not catch ExA; uncaught -> thread dies.
    const Program prog = test::makeProgramFull([](ProgramBuilder &pb) {
        ClassBuilder &exa = pb.cls("ExA");
        (void)exa;
        ClassBuilder &exb = pb.cls("ExB", "ExA");
        (void)exb;
        ClassBuilder &t = pb.cls("T");
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        Label ts = m.newLabel(), te = m.newLabel(), h = m.newLabel();
        m.bind(ts);
        m.newObject("ExA").athrow();
        m.bind(te);
        m.iconst(0).ireturn();
        m.bind(h);
        m.pop();
        m.iconst(1).ireturn();
        m.addHandler(ts, te, h, "ExB");
    });
    const RunResult r = test::runProgram(prog, 0);
    EXPECT_FALSE(r.completed);
    EXPECT_NE(r.uncaughtException, nullptr);
}

TEST(Exceptions, PropagateAcrossFrames)
{
    EXPECT_EQ(runBoth([](ProgramBuilder &pb) {
        ClassBuilder &ex = pb.cls("Ex");
        (void)ex;
        ClassBuilder &t = pb.cls("T");
        {
            MethodBuilder &m =
                t.staticMethod("thrower", {VType::Int}, VType::Int);
            Label no = m.newLabel();
            m.iload(0).ifle(no);
            m.newObject("Ex").athrow();
            m.bind(no);
            m.iconst(5).ireturn();
        }
        {
            MethodBuilder &m =
                t.staticMethod("middle", {VType::Int}, VType::Int);
            m.iload(0).invokeStatic("T.thrower").iconst(1).iadd()
                .ireturn();
        }
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        Label ts = m.newLabel(), te = m.newLabel(), h = m.newLabel();
        m.bind(ts);
        m.iload(0).invokeStatic("T.middle");
        m.bind(te);
        m.ireturn();
        m.bind(h);
        m.pop();
        m.iconst(-9).ireturn();
        m.addHandler(ts, te, h, "Ex");
    }, 1), -9);
}

TEST(Exceptions, StackOverflowIsCatchable)
{
    EXPECT_EQ(runBoth([](ProgramBuilder &pb) {
        ClassBuilder &t = pb.cls("T");
        {
            MethodBuilder &m =
                t.staticMethod("infinite", {VType::Int}, VType::Int);
            m.locals(12);  // fat frames to hit the limit quickly
            m.iload(0).iconst(1).iadd().invokeStatic("T.infinite")
                .ireturn();
        }
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        Label ts = m.newLabel(), te = m.newLabel(), h = m.newLabel();
        m.bind(ts);
        m.iconst(0).invokeStatic("T.infinite");
        m.bind(te);
        m.ireturn();
        m.bind(h);
        m.pop();
        m.iconst(123).ireturn();
        m.addHandler(ts, te, h);
    }), 123);
}

TEST(Threads, SpawnAndJoin)
{
    EXPECT_EQ(runBoth([](ProgramBuilder &pb) {
        pb.staticSlot("acc", VType::Int);
        ClassBuilder &t = pb.cls("T");
        {
            MethodBuilder &m =
                t.staticMethod("worker", {VType::Int}, VType::Void);
            m.locals(2);
            // acc += arg * 1000 (each worker writes a distinct digit
            // range; both run to completion before join returns)
            m.getStaticI("acc")
                .iload(0).iconst(1000).imul().iadd()
                .putStaticI("acc");
            m.returnVoid();
        }
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.locals(3);
        m.iconst(1).spawnThread("T.worker").istore(1);
        m.iconst(2).spawnThread("T.worker").istore(2);
        m.iload(1).joinThread();
        m.iload(2).joinThread();
        m.getStaticI("acc").ireturn();
    }), 3000);
}

TEST(Threads, JoinAlreadyDoneThread)
{
    EXPECT_EQ(runBoth([](ProgramBuilder &pb) {
        pb.staticSlot("flag", VType::Int);
        ClassBuilder &t = pb.cls("T");
        {
            MethodBuilder &m =
                t.staticMethod("worker", {VType::Int}, VType::Void);
            m.iload(0).putStaticI("flag");
            m.returnVoid();
        }
        MethodBuilder &m =
            t.staticMethod("main", {VType::Int}, VType::Int);
        m.locals(3);
        m.iconst(77).spawnThread("T.worker").istore(1);
        // Busy loop long enough for the worker to finish first.
        m.iconst(5000).istore(2);
        Label spin = m.newLabel(), go = m.newLabel();
        m.bind(spin);
        m.iload(2).ifle(go);
        m.iinc(2, -1);
        m.gotoL(spin);
        m.bind(go);
        m.iload(1).joinThread();
        m.getStaticI("flag").ireturn();
    }), 77);
}

} // namespace
} // namespace jrs
