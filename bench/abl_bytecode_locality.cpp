/**
 * @file
 * Ablation: dynamic bytecode concentration — the locality argument of
 * Section 4.3.
 *
 * The paper (citing its bytecode-characterization companion work [27])
 * explains the interpreter's near-perfect I-cache behaviour by the
 * concentration of the dynamic bytecode stream: "15 unique bytecodes
 * accounted for 60% to 85% of the dynamic bytecode stream ... 22 to 48
 * distinct bytecodes constituted 90%". This bench measures the same
 * concentration curve for our suite, per workload and cumulative.
 */
#include <algorithm>

#include "bench_util.h"

using namespace jrs;

namespace {

/** Dynamic instructions covered by the top-k opcodes. */
double
coverage(const std::vector<std::uint64_t> &counts, std::size_t k)
{
    std::vector<std::uint64_t> sorted = counts;
    std::sort(sorted.rbegin(), sorted.rend());
    std::uint64_t total = 0, top = 0;
    for (std::uint64_t c : sorted)
        total += c;
    for (std::size_t i = 0; i < k && i < sorted.size(); ++i)
        top += sorted[i];
    return percent(top, total);
}

/** Distinct opcodes needed to reach @p pct of the stream. */
std::size_t
opsForCoverage(const std::vector<std::uint64_t> &counts, double pct)
{
    std::vector<std::uint64_t> sorted = counts;
    std::sort(sorted.rbegin(), sorted.rend());
    std::uint64_t total = 0;
    for (std::uint64_t c : sorted)
        total += c;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        acc += sorted[i];
        if (percent(acc, total) >= pct)
            return i + 1;
    }
    return sorted.size();
}

} // namespace

int
main()
{
    bench::header(
        "Ablation — dynamic bytecode concentration (Sec. 4.3 locality "
        "argument)",
        "paper's companion data: top-15 bytecodes = 60-85% of the "
        "stream; 22-48 distinct bytecodes = 90%");

    Table t({"workload", "dyn_bytecodes", "distinct", "top5%",
             "top15%", "ops_for_90%"});

    std::vector<std::uint64_t> cumulative(kNumOpcodes, 0);
    for (const WorkloadInfo *w : bench::suite(true)) {
        RunSpec s;
        s.workload = w;
        s.policy = std::make_shared<NeverCompilePolicy>();
        const RunResult r = runWorkload(s);
        std::size_t distinct = 0;
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < r.bytecodeCounts.size(); ++i) {
            cumulative[i] += r.bytecodeCounts[i];
            total += r.bytecodeCounts[i];
            distinct += r.bytecodeCounts[i] != 0 ? 1 : 0;
        }
        t.addRow({
            w->name,
            withCommas(total),
            std::to_string(distinct),
            fixed(coverage(r.bytecodeCounts, 5), 1),
            fixed(coverage(r.bytecodeCounts, 15), 1),
            std::to_string(opsForCoverage(r.bytecodeCounts, 90.0)),
        });
    }
    t.addRow({
        "ALL",
        "-",
        "-",
        fixed(coverage(cumulative, 5), 1),
        fixed(coverage(cumulative, 15), 1),
        std::to_string(opsForCoverage(cumulative, 90.0)),
    });
    t.print(std::cout);
    std::cout << "\n(the concentration explains the interpreter's "
                 ">99.9% I-hit rates: the hot handlers fit in a few "
                 "cache lines)\n";
    return 0;
}
