/**
 * @file
 * Ablation: input-size scaling — the paper's Section 2 remark.
 *
 * "We have also investigated the effect of larger datasets, s10 and
 * s100. The increased method reuse resulted in expected results such
 * as increased code locality, reduced time spent in compilation vs
 * execution, etc. but all major conclusions from the experiments stay
 * valid." This bench runs each workload at 1x, 4x and 16x its tiny
 * size and reports the translate share and the oracle's savings: both
 * must shrink with size while the JIT > interpreter conclusion holds.
 */
#include "bench_util.h"

using namespace jrs;

int
main()
{
    bench::header(
        "Ablation — input-size scaling (the paper's s1/s10/s100 note)",
        "translate share and oracle savings shrink as method reuse "
        "amortizes compilation; conclusions unchanged");

    Table t({"workload", "scale", "arg", "translate%", "opt_saving%",
             "interp/jit"});

    for (const WorkloadInfo *w : bench::suite()) {
        for (const int scale : {1, 4, 16}) {
            const std::int32_t arg = w->tinyArg * scale;
            const OracleOutcome o = runOracleExperiment(*w, arg);
            const double jit_total =
                static_cast<double>(o.jitRun.totalEvents);
            t.addRow({
                w->name,
                scale == 1 ? "s1" : (scale == 4 ? "s4" : "s16"),
                withCommas(static_cast<std::uint64_t>(arg)),
                fixed(100.0 * o.jitRun.inPhase(Phase::Translate)
                          / jit_total,
                      1),
                fixed(100.0
                          * (1.0
                             - static_cast<double>(
                                   o.oracleRun.totalEvents)
                                 / jit_total),
                      1),
                fixed(static_cast<double>(o.interpRun.totalEvents)
                          / jit_total,
                      2),
            });
        }
    }
    t.print(std::cout);
    return 0;
}
