/**
 * @file
 * Figure 10: execution time (cycles) normalized to the 1-wide CPU, at
 * issue widths 1, 2, 4 and 8, per workload and mode.
 *
 * The companion view of Figure 9: since the instruction count per
 * mode is fixed, normalized time is the inverse of IPC scaling. To
 * reproduce: JIT-mode normalized time keeps improving at wide issue
 * for most programs, while interpreter-mode curves level off.
 *
 * `--perf-json FILE` additionally records each run's stream and
 * replays it through a perf-attribution pipeline (default config),
 * writing per-method CPI stacks per (workload, mode); without the
 * flag the bench runs exactly as before.
 */
#include "arch/pipeline/pipeline.h"
#include "bench_util.h"

using namespace jrs;

int
main(int argc, char **argv)
{
    const obs::ObsCli cli = bench::parseObsArgs(argc, argv);
    cli.setup();

    bench::header(
        "Figure 10 — normalized execution cycles vs issue width",
        "interpreter improvement flattens with wider issue; JIT "
        "continues to gain");

    const std::uint32_t widths[] = {1, 2, 4, 8};

    Table t({"workload", "mode", "w1", "w2", "w4", "w8",
             "cycles_w1"});

    obs::PerfReportSet reports;
    for (const WorkloadInfo *w : bench::suite(true)) {
        for (const bool jit : {false, true}) {
            std::vector<std::unique_ptr<PipelineSim>> sims;
            MultiSink multi;
            for (std::uint32_t wd : widths) {
                PipelineConfig cfg;
                cfg.issueWidth = wd;
                sims.push_back(std::make_unique<PipelineSim>(cfg));
                multi.add(sims.back().get());
            }
            RunSpec s;
            s.workload = w;
            s.policy = jit
                ? std::static_pointer_cast<CompilationPolicy>(
                      std::make_shared<AlwaysCompilePolicy>())
                : std::static_pointer_cast<CompilationPolicy>(
                      std::make_shared<NeverCompilePolicy>());
            s.sink = &multi;
            if (cli.perfRequested()) {
                const RecordedRun rec = recordWorkload(s);
                obs::AttributedPipeline attributed(PipelineConfig{},
                                                   rec.methods);
                rec.trace->replay(attributed);
                reports.add(std::string("fig10/") + w->name + "/"
                                + (jit ? "jit" : "interp"),
                            attributed.perf());
            } else {
                (void)runWorkload(s);
            }
            const double base = static_cast<double>(sims[0]->cycles());
            t.addRow({
                w->name,
                jit ? "jit" : "interp",
                "1.000",
                fixed(static_cast<double>(sims[1]->cycles()) / base, 3),
                fixed(static_cast<double>(sims[2]->cycles()) / base, 3),
                fixed(static_cast<double>(sims[3]->cycles()) / base, 3),
                withCommas(sims[0]->cycles()),
            });
        }
    }
    t.print(std::cout);
    cli.writePerf(reports, std::cout);
    cli.finish(std::cout);
    return 0;
}
