/**
 * @file
 * Ablation: code-cache capacity × eviction policy — what a bounded
 * code cache costs in retranslation work.
 *
 * Each bounded grid point runs jit-mode under a capacity a fraction of
 * the workload's total generated code (the suite compiles ~4.7–8.8 KiB
 * per workload), so installs continuously evict and re-invoked victims
 * are retranslated. The cost shows up directly in the stream: extra
 * Translate-phase events (the retranslation overhead) and, under a
 * counter policy, interpreter fallback. The unlimited baseline row per
 * workload anchors the curve at zero overhead.
 *
 * Runs on the sweep engine; every bounded point records its own stream
 * (eviction changes what executes natively, so capacity and policy are
 * part of the stream identity).
 */
#include "bench_util.h"
#include "sweep/grids.h"

using namespace jrs;

int
main(int argc, char **argv)
{
    const bench::SweepBenchArgs args =
        bench::parseSweepBenchArgs(argc, argv);
    bench::setupObs(args);

    bench::header(
        "Ablation — code-cache capacity x eviction policy",
        "retranslation overhead as Translate-phase share of the "
        "stream; jit mode, unlimited baseline per workload");

    sweep::SweepOptions opts;
    opts.jobs = args.jobs;
    opts.cacheDir = args.cacheDir;
    obs::PerfReportSet perfReports;
    bench::attachPerfObserver(opts, args, perfReports);
    prof::CctReportSet cctReports;
    bench::attachCctObserver(opts, args, cctReports);
    prof::SampleReportSet sampleReports;
    bench::attachSampleObserver(opts, args, sampleReports);
    sweep::SweepEngine engine(opts);
    const sweep::SweepResult result =
        engine.run(sweep::buildCodeCacheGrid());
    if (!result.allOk()) {
        for (const sweep::PointResult &p : result.points) {
            if (!p.ok)
                std::cerr << p.label << ": " << p.error << '\n';
        }
        bench::finishObs(args, &perfReports, &cctReports,
                         &sampleReports);
        return 1;
    }

    Table t({"workload", "policy", "capacity", "events",
             "translate%", "interp%", "native%", "overhead%"});
    for (const WorkloadInfo *w : bench::suite()) {
        const sweep::PointResult *base = result.find(
            sweep::codeCacheLabel(w->name, 0, EvictionPolicy::kFifo));
        const double baseEvents = base->metric("total_events");
        t.addRow({w->name, "-", "unlimited",
                  withCommas(static_cast<std::uint64_t>(baseEvents)),
                  fixed(base->metric("translate_pct"), 2),
                  fixed(base->metric("interp_pct"), 2),
                  fixed(base->metric("native_pct"), 2), "0.00"});
        for (const EvictionPolicy policy : sweep::kCodeCachePolicies) {
            for (const std::size_t cap : sweep::kCodeCacheCapacities) {
                const sweep::PointResult *p = result.find(
                    sweep::codeCacheLabel(w->name, cap, policy));
                const double events = p->metric("total_events");
                t.addRow(
                    {w->name, evictionPolicyName(policy),
                     std::to_string(cap >> 10) + "k",
                     withCommas(static_cast<std::uint64_t>(events)),
                     fixed(p->metric("translate_pct"), 2),
                     fixed(p->metric("interp_pct"), 2),
                     fixed(p->metric("native_pct"), 2),
                     fixed(100.0 * (events - baseEvents) / baseEvents,
                           2)});
            }
        }
    }
    t.print(std::cout);
    std::cout << "sweep: " << fixed(result.wallSeconds, 2) << "s, "
              << result.jobs << " jobs, "
              << result.traces.recordings << " recordings, "
              << result.traces.diskLoads << " disk loads\n";

    if (!args.json.empty())
        result.writeJson(args.json);
    bench::finishObs(args, &perfReports, &cctReports,
                     &sampleReports);
    return 0;
}
