/**
 * @file
 * Ablation — sampling-profiler accuracy and overhead vs sample period.
 *
 * The sampler (prof/sampler.h) exists to quantify the statistical
 * profiling tradeoff the paper's exact attribution sidesteps: how
 * wrong is a period-P sampled profile, and how much replay time does
 * sampling save over exact calling-context profiling? This bench
 * records each workload once, replays the stream through (a) a bare
 * pipeline, (b) the exact CCT profiler — ground truth — and (c) the
 * sampling profiler at a ladder of periods, then calibrates every
 * sampled profile against the exact one:
 *
 *   - mean/max per-method cycle-share error (percentage points)
 *   - top-10 hot-method overlap and pairwise rank agreement
 *   - host replay overhead vs the bare pipeline (obs::HostStats)
 *
 * Error should fall and overhead rise as the period shrinks; the
 * curves (bench/BENCH_sample.json via --bench-json) put numbers on
 * where the knee is. The sampled replay's model is asserted
 * bit-identical to the bare pipeline's — sampling is read-only.
 *
 *   abl_sample_period [--seed N] [--bench-json FILE]
 */
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "arch/pipeline/pipeline.h"
#include "bench_util.h"
#include "harness/experiment.h"
#include "obs/host_stats.h"
#include "prof/cct.h"
#include "prof/sampler.h"
#include "support/statistics.h"
#include "support/table.h"
#include "vm/engine/policy.h"
#include "workloads/workload.h"

using namespace jrs;

namespace {

/** Periods swept, hottest sampling first. */
const std::uint64_t kPeriods[] = {256, 1024, 4096, 16384, 65536};

/** Workloads whose streams anchor the curves (one loopy, one ragged). */
const char *const kWorkloads[] = {"compress", "db"};

struct Args {
    std::uint64_t seed = 1;
    std::string benchJson;
};

Args
parseArgs(int argc, char **argv)
{
    Args out;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "error: " << a << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--seed") {
            out.seed = obs::ObsCli::parseCount(next(), "--seed");
        } else if (a == "--bench-json") {
            out.benchJson = next();
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--seed N] [--bench-json FILE]\n";
            std::exit(2);
        }
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parseArgs(argc, argv);
    bench::header(
        "Ablation — sampled-profile error and overhead vs period",
        "exact attribution is the simulator's luxury; this measures "
        "what sampling at period P gives up");

    obs::HostStats host;
    std::vector<prof::BenchRun> benchRuns;
    Table t({"workload", "period", "samples", "mean|err|pp",
             "max|err|pp", "top10", "rank", "replay-x"});

    for (const char *name : kWorkloads) {
        const WorkloadInfo *w = findWorkload(name);
        if (w == nullptr) {
            std::cerr << "error: workload " << name << " missing\n";
            return 1;
        }
        RunSpec spec;
        spec.workload = w;
        spec.arg = w->tinyArg;
        const RecordedRun rec = recordWorkload(spec);
        const std::uint64_t events = rec.result.totalEvents;

        // (a) The bare model is the overhead baseline.
        std::uint64_t pipeCycles = 0;
        {
            obs::HostStats::Section s(
                host, std::string("sample/") + name + "/pipeline",
                &events);
            PipelineSim pipe{PipelineConfig{}};
            rec.trace->replay(pipe);
            pipeCycles = pipe.cycles();
        }
        const double pipeSeconds =
            host.section(std::string("sample/") + name + "/pipeline")
                .seconds;

        // (b) The exact profiler is the accuracy ground truth (and
        // the overhead ceiling sampling should undercut).
        prof::CctPipeline exact(PipelineConfig{}, rec.methods);
        {
            obs::HostStats::Section s(
                host, std::string("sample/") + name + "/exact",
                &events);
            rec.trace->replay(exact);
        }
        {
            const obs::HostStats::Totals et = host.section(
                std::string("sample/") + name + "/exact");
            prof::BenchRun run = bench::benchRun(
                std::string("sample/") + name + "/exact", events,
                et.seconds);
            if (pipeSeconds > 0)
                run.metrics.emplace_back("overhead_vs_pipeline",
                                         et.seconds / pipeSeconds);
            benchRuns.push_back(std::move(run));
        }

        // (c) The period ladder.
        for (const std::uint64_t period : kPeriods) {
            const std::string label = std::string("sample/") + name
                + "/period" + std::to_string(period);
            prof::SampleOptions opt;
            opt.period = period;
            opt.seed = args.seed;
            prof::SamplePipeline sp(PipelineConfig{}, rec.methods,
                                    opt);
            {
                obs::HostStats::Section s(host, label, &events);
                rec.trace->replay(sp);
            }
            if (sp.pipeline().cycles() != pipeCycles) {
                std::cerr << "error: sampled replay perturbed the "
                             "model at period "
                          << period << '\n';
                return 1;
            }
            const prof::CalibrationReport rep =
                prof::calibrate(exact.cct(), sp.sampler());
            const double seconds = host.section(label).seconds;
            const double overhead =
                pipeSeconds > 0 ? seconds / pipeSeconds : 0;

            t.addRow({name, std::to_string(period),
                      withCommas(rep.samples),
                      fixed(rep.meanAbsErrPct, 3),
                      fixed(rep.maxAbsErrPct, 3),
                      fixed(rep.topOverlap, 2),
                      fixed(rep.rankAgreement, 3),
                      fixed(overhead, 2)});

            prof::BenchRun run =
                bench::benchRun(label, events, seconds);
            run.metrics.emplace_back("period",
                                     static_cast<double>(period));
            run.metrics.emplace_back("samples",
                                     static_cast<double>(rep.samples));
            run.metrics.emplace_back("mean_abs_err_pct",
                                     rep.meanAbsErrPct);
            run.metrics.emplace_back("max_abs_err_pct",
                                     rep.maxAbsErrPct);
            run.metrics.emplace_back("top10_overlap", rep.topOverlap);
            run.metrics.emplace_back("rank_agreement",
                                     rep.rankAgreement);
            if (pipeSeconds > 0)
                run.metrics.emplace_back("overhead_vs_pipeline",
                                         overhead);
            benchRuns.push_back(std::move(run));
        }
    }

    t.print(std::cout);
    std::cout << "error columns are percentage points of cycle share;"
                 " replay-x is host replay time vs the bare pipeline"
                 " (exact profiler for reference, then each period)\n";

    if (!args.benchJson.empty()) {
        bench::upsertBenchRuns(args.benchJson, "sample", benchRuns);
        std::cout << "wrote " << args.benchJson << '\n';
    }
    return 0;
}
