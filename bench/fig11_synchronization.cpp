/**
 * @file
 * Figure 11: synchronization behaviour — (i) distribution of the four
 * access cases per workload, (ii) cost of the JDK 1.1.6 monitor cache
 * vs thin locks vs the paper's one-bit variant.
 *
 * To reproduce: cases (a) and (b) dominate, with more than 80% of
 * accesses being (a) — motivating the one-bit design; thin locks cut
 * simulated lock cycles roughly in half vs the monitor cache.
 */
#include "bench_util.h"
#include "harness/paper_data.h"

using namespace jrs;

namespace {

RunResult
runWith(const WorkloadInfo &w, SyncKind kind)
{
    RunSpec s;
    s.workload = &w;
    s.policy = std::make_shared<AlwaysCompilePolicy>();
    s.syncKind = kind;
    return runWorkload(s);
}

} // namespace

int
main()
{
    bench::header(
        "Figure 11 — sync case distribution and lock-implementation "
        "cost",
        "> 80% of accesses are case (a); thin locks ~2x cheaper than "
        "the monitor cache");

    Table dist({"workload", "accesses", "(a)%", "(b)%", "(c)%",
                "(d)%", "blocks", "inflations"});
    Table cost({"workload", "mc_cycles", "thin_cycles", "1bit_cycles",
                "thin_speedup", "1bit_speedup", "lock_share%"});

    for (const WorkloadInfo *w : bench::suite(true)) {
        const RunResult mc = runWith(*w, SyncKind::MonitorCache);
        const RunResult thin = runWith(*w, SyncKind::ThinLock);
        const RunResult onebit = runWith(*w, SyncKind::OneBitLock);
        const LockStats &ls = thin.lockStats;
        const std::uint64_t total = ls.totalAccesses();
        if (total == 0) {
            dist.addRow({w->name, "0", "-", "-", "-", "-", "0", "0"});
            continue;
        }
        dist.addRow({
            w->name,
            withCommas(total),
            fixed(percent(ls.caseCount[0], total), 1),
            fixed(percent(ls.caseCount[1], total), 1),
            fixed(percent(ls.caseCount[2], total), 1),
            fixed(percent(ls.caseCount[3], total), 1),
            withCommas(ls.blocks),
            withCommas(thin.lockStats.inflations),
        });
        const double mc_c =
            static_cast<double>(mc.lockStats.simCycles);
        const double th_c =
            static_cast<double>(thin.lockStats.simCycles);
        const double ob_c =
            static_cast<double>(onebit.lockStats.simCycles);
        cost.addRow({
            w->name,
            withCommas(mc.lockStats.simCycles),
            withCommas(thin.lockStats.simCycles),
            withCommas(onebit.lockStats.simCycles),
            th_c > 0 ? fixed(mc_c / th_c, 2) + "x" : "-",
            ob_c > 0 ? fixed(mc_c / ob_c, 2) + "x" : "-",
            // Monitor-cache lock work as a share of JIT-mode time
            // (the paper: 10-20% for sync-heavy programs).
            fixed(100.0 * mc_c
                      / static_cast<double>(mc.totalEvents),
                  1),
        });
    }

    std::cout << "\n(i) access-case distribution\n";
    dist.print(std::cout);
    std::cout << "\n(ii) lock implementation cost (simulated cycles "
                 "spent in lock code)\n";
    cost.print(std::cout);
    std::cout << "\npaper reference: case (a) > "
              << paper::kCaseAFractionPct << "%, thin-lock speedup ~"
              << paper::kThinLockSpeedup << "x.\n";
    return 0;
}
