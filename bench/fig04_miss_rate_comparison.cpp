/**
 * @file
 * Figure 4: average L1 miss rates of the Java suite (interp and JIT)
 * side by side with the paper's SPECint/C++ reference points.
 *
 * To reproduce: interpreter beats C/C++ on both caches; JIT's I-cache
 * behaviour approaches C/C++ while its D-cache miss rate is the worst
 * of all families. (The C/C++ rows are the paper's reported values —
 * external baselines there too.)
 *
 * Runs on the sweep engine (`--jobs N`): both execution modes of a
 * workload reuse recordings that any co-resident sweep (fig07/fig08,
 * via --cache-dir or the `all` grid) already produced.
 */
#include "bench_util.h"
#include "harness/paper_data.h"
#include "sweep/grids.h"

using namespace jrs;

int
main(int argc, char **argv)
{
    const bench::SweepBenchArgs args =
        bench::parseSweepBenchArgs(argc, argv);
    bench::setupObs(args);

    bench::header(
        "Figure 4 — average miss rates vs C/C++ reference",
        "interp < C/C++ on both; JIT I-cache ~ C/C++, JIT D-cache "
        "worst of all families");

    sweep::SweepOptions opts;
    opts.jobs = args.jobs;
    opts.cacheDir = args.cacheDir;
    obs::PerfReportSet perfReports;
    bench::attachPerfObserver(opts, args, perfReports);
    prof::CctReportSet cctReports;
    bench::attachCctObserver(opts, args, cctReports);
    prof::SampleReportSet sampleReports;
    bench::attachSampleObserver(opts, args, sampleReports);
    sweep::SweepEngine engine(opts);
    const sweep::SweepResult result =
        engine.run(sweep::buildFig04Grid());
    if (!result.allOk()) {
        for (const sweep::PointResult &p : result.points) {
            if (!p.ok)
                std::cerr << p.label << ": " << p.error << '\n';
        }
        bench::finishObs(args, &perfReports, &cctReports,
                         &sampleReports);
        return 1;
    }

    double i_sum[2] = {}, d_sum[2] = {};
    int n = 0;
    for (const WorkloadInfo *w : bench::suite()) {
        for (const bool jit : {false, true}) {
            const sweep::PointResult *p =
                result.find(sweep::fig04Label(w->name, jit));
            i_sum[jit] += p->metric("icache_miss_pct");
            d_sum[jit] += p->metric("dcache_miss_pct");
        }
        ++n;
    }

    Table t({"family", "icache_miss%", "dcache_miss%", "source"});
    t.addRow({"Java interp (measured)", fixed(i_sum[0] / n, 3),
              fixed(d_sum[0] / n, 3), "jrs simulator"});
    t.addRow({"Java JIT (measured)", fixed(i_sum[1] / n, 3),
              fixed(d_sum[1] / n, 3), "jrs simulator"});
    for (const auto &ref : paper::kFig4Reference) {
        t.addRow({ref.family, fixed(ref.icachePct, 2),
                  fixed(ref.dcachePct, 2), "paper (plot read)"});
    }
    t.print(std::cout);
    std::cout << "sweep: " << fixed(result.wallSeconds, 2) << "s, "
              << result.jobs << " jobs, "
              << result.traces.recordings << " recordings, "
              << result.traces.diskLoads << " disk loads\n";

    if (!args.json.empty())
        result.writeJson(args.json);
    bench::finishObs(args, &perfReports, &cctReports,
                     &sampleReports);
    return 0;
}
