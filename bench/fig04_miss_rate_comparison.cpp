/**
 * @file
 * Figure 4: average L1 miss rates of the Java suite (interp and JIT)
 * side by side with the paper's SPECint/C++ reference points.
 *
 * To reproduce: interpreter beats C/C++ on both caches; JIT's I-cache
 * behaviour approaches C/C++ while its D-cache miss rate is the worst
 * of all families. (The C/C++ rows are the paper's reported values —
 * external baselines there too.)
 */
#include "arch/cache/cache.h"
#include "bench_util.h"
#include "harness/paper_data.h"

using namespace jrs;

int
main()
{
    bench::header(
        "Figure 4 — average miss rates vs C/C++ reference",
        "interp < C/C++ on both; JIT I-cache ~ C/C++, JIT D-cache "
        "worst of all families");

    const CacheConfig icfg{64 * 1024, 32, 2, true};
    const CacheConfig dcfg{64 * 1024, 32, 4, true};

    double i_interp = 0, d_interp = 0, i_jit = 0, d_jit = 0;
    int n = 0;
    for (const WorkloadInfo *w : bench::suite()) {
        CacheSink interp_sink(icfg, dcfg);
        CacheSink jit_sink(icfg, dcfg);
        (void)runBothModes(*w, 0, &interp_sink, &jit_sink);
        i_interp += interp_sink.icache().stats().missRate();
        d_interp += interp_sink.dcache().stats().missRate();
        i_jit += jit_sink.icache().stats().missRate();
        d_jit += jit_sink.dcache().stats().missRate();
        ++n;
    }

    Table t({"family", "icache_miss%", "dcache_miss%", "source"});
    t.addRow({"Java interp (measured)",
              fixed(100.0 * i_interp / n, 3),
              fixed(100.0 * d_interp / n, 3), "jrs simulator"});
    t.addRow({"Java JIT (measured)", fixed(100.0 * i_jit / n, 3),
              fixed(100.0 * d_jit / n, 3), "jrs simulator"});
    for (const auto &ref : paper::kFig4Reference) {
        t.addRow({ref.family, fixed(ref.icachePct, 2),
                  fixed(ref.dcachePct, 2), "paper (plot read)"});
    }
    t.print(std::cout);
    return 0;
}
