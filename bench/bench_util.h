/**
 * @file
 * Shared helpers for the bench binaries that regenerate the paper's
 * tables and figures.
 */
#ifndef JRS_BENCH_BENCH_UTIL_H
#define JRS_BENCH_BENCH_UTIL_H

#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "support/statistics.h"
#include "support/table.h"

namespace jrs::bench {

/** The seven SpecJVM98-like programs (hello excluded by default). */
inline std::vector<const WorkloadInfo *>
suite(bool include_hello = false)
{
    std::vector<const WorkloadInfo *> out;
    for (const WorkloadInfo &w : allWorkloads()) {
        if (!include_hello && std::string(w.name) == "hello")
            continue;
        out.push_back(&w);
    }
    return out;
}

/** Print a standard bench header. */
inline void
header(const char *experiment, const char *paper_note)
{
    std::cout << "==================================================="
                 "===========================\n"
              << experiment << '\n'
              << "paper: " << paper_note << '\n'
              << "==================================================="
                 "===========================\n";
}

} // namespace jrs::bench

#endif // JRS_BENCH_BENCH_UTIL_H
