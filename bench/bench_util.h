/**
 * @file
 * Shared helpers for the bench binaries that regenerate the paper's
 * tables and figures.
 */
#ifndef JRS_BENCH_BENCH_UTIL_H
#define JRS_BENCH_BENCH_UTIL_H

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.h"
#include "obs/cli.h"
#include "obs/host_stats.h"
#include "obs/obs.h"
#include "obs/perf.h"
#include "prof/bench.h"
#include "prof/cct.h"
#include "prof/sampler.h"
#include "support/statistics.h"
#include "support/table.h"
#include "sweep/cct_observer.h"
#include "sweep/perf_observer.h"
#include "sweep/sample_observer.h"
#include "vm/runtime/vm_error.h"

namespace jrs::bench {

/**
 * The SpecJVM98-like bench suite, in the paper's presentation order.
 *
 * @param include_hello When false (the default), the `hello` program
 *   is excluded: it is the system-init archetype — tiny methods run
 *   once — and carries no steady-state signal, so most figures skip
 *   it just as the paper reports SpecJVM98 programs only. Pass true
 *   for experiments where startup behaviour is the point (e.g. the
 *   Figure 8 line-size sweep, which shows hello's short methods
 *   preferring small lines).
 *
 * The two variants are built once and memoized in function-local
 * statics, whose initialization C++11 guarantees is thread-safe: the
 * first caller (on any thread) builds each vector exactly once, and
 * concurrent first calls — e.g. sweep workers constructing grids —
 * block until it is ready. Callers get a reference to a
 * process-lifetime vector, so the per-call vector rebuild (and the
 * dangling-reference hazard of binding a temporary) is gone.
 */
inline const std::vector<const WorkloadInfo *> &
suite(bool include_hello = false)
{
    const auto build = [](bool with_hello) {
        std::vector<const WorkloadInfo *> out;
        for (const WorkloadInfo &w : allWorkloads()) {
            if (!with_hello && std::string(w.name) == "hello")
                continue;
            out.push_back(&w);
        }
        return out;
    };
    static const std::vector<const WorkloadInfo *> kWithHello =
        build(true);
    static const std::vector<const WorkloadInfo *> kWithoutHello =
        build(false);
    return include_hello ? kWithHello : kWithoutHello;
}

/** Print a standard bench header. */
inline void
header(const char *experiment, const char *paper_note)
{
    std::cout << "==================================================="
                 "===========================\n"
              << experiment << '\n'
              << "paper: " << paper_note << '\n'
              << "==================================================="
                 "===========================\n";
}

/** Command-line options shared by the sweep-engine bench ports. */
struct SweepBenchArgs {
    unsigned jobs = 0;        ///< 0 = hardware concurrency
    std::string json;         ///< --json: write the SweepResult
    std::string cacheDir;     ///< --cache-dir: on-disk trace cache
    bool compareSerial = false;  ///< --compare-serial
    std::string benchJson;    ///< --bench-json: speedup trajectory file
    obs::ObsCli obs;          ///< --metrics/trace/perf-json (obs/cli.h)
};

/** Parse the flags above; exits with usage on unknown arguments. */
inline SweepBenchArgs
parseSweepBenchArgs(int argc, char **argv)
{
    SweepBenchArgs out;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "error: " << a << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--jobs") {
            const std::string v = next();
            char *end = nullptr;
            out.jobs = static_cast<unsigned>(
                std::strtoul(v.c_str(), &end, 10));
            if (end == v.c_str() || *end != '\0') {
                std::cerr << "error: --jobs expects a number\n";
                std::exit(2);
            }
        } else if (a == "--json") {
            out.json = next();
        } else if (a == "--cache-dir") {
            out.cacheDir = next();
        } else if (a == "--compare-serial") {
            out.compareSerial = true;
        } else if (a == "--bench-json") {
            out.benchJson = next();
        } else if (out.obs.tryParse(a, next)) {
            continue;
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--jobs N] [--json FILE] [--cache-dir DIR]"
                         " [--compare-serial] [--bench-json FILE]"
                      << obs::ObsCli::usageText() << '\n';
            std::exit(2);
        }
    }
    return out;
}

/**
 * Parse a bench command line that takes only the observability output
 * flags (benches that run live, off the sweep engine); exits with
 * usage on anything else.
 */
inline obs::ObsCli
parseObsArgs(int argc, char **argv)
{
    obs::ObsCli cli;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "error: " << a << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (!cli.tryParse(a, next)) {
            std::cerr << "usage: " << argv[0]
                      << obs::ObsCli::usageText() << '\n';
            std::exit(2);
        }
    }
    return cli;
}

/** Enable observability when an output file was requested. */
inline void
setupObs(const SweepBenchArgs &args)
{
    args.obs.setup();
}

/**
 * Write the requested observability files. Call on every exit path
 * after the sweep ran (including early failure returns, so a partial
 * run still leaves its metrics behind for diagnosis). @p perf, when
 * non-null, is the attribution collected via attachPerfObserver.
 */
inline void
finishObs(const SweepBenchArgs &args,
          const obs::PerfReportSet *perf = nullptr,
          const prof::CctReportSet *cct = nullptr,
          const prof::SampleReportSet *sample = nullptr)
{
    args.obs.finish(std::cout);
    if (perf != nullptr)
        args.obs.writePerf(*perf, std::cout);
    if (cct != nullptr)
        args.obs.writeCct(*cct, std::cout);
    if (sample != nullptr)
        args.obs.writeSample(*sample, std::cout);
}

/**
 * Wire --perf-json into a sweep (no-op unless the flag was given):
 * see sweep/perf_observer.h. @p reports must outlive the sweep.
 */
inline void
attachPerfObserver(sweep::SweepOptions &opts,
                   const SweepBenchArgs &args,
                   obs::PerfReportSet &reports)
{
    if (args.obs.perfRequested())
        sweep::attachPerfObserver(opts, reports);
}

/**
 * Wire --cct-json/--flame into a sweep (no-op unless one of the flags
 * was given): see sweep/cct_observer.h. @p reports must outlive the
 * sweep. Composes with attachPerfObserver — both observers may watch
 * the same sweep.
 */
inline void
attachCctObserver(sweep::SweepOptions &opts,
                  const SweepBenchArgs &args,
                  prof::CctReportSet &reports)
{
    if (args.obs.cctRequested())
        sweep::attachCctObserver(opts, reports);
}

/**
 * Wire --sample-json into a sweep (no-op unless the flag was given):
 * see sweep/sample_observer.h. @p reports must outlive the sweep.
 * Composes with the perf and CCT observers.
 */
inline void
attachSampleObserver(sweep::SweepOptions &opts,
                     const SweepBenchArgs &args,
                     prof::SampleReportSet &reports)
{
    if (args.obs.sampleRequested())
        sweep::attachSampleObserver(opts, args.obs.sampleOptions(),
                                    reports);
}

/** Sum of per-point stream events across a finished sweep. */
inline std::uint64_t
sweepEvents(const sweep::SweepResult &result)
{
    std::uint64_t total = 0;
    for (const sweep::PointResult &p : result.points)
        total += p.traceEvents;
    return total;
}

/** Build one jrs-bench-v1 run entry from a timed step. */
inline prof::BenchRun
benchRun(std::string label, std::uint64_t events, double seconds)
{
    prof::BenchRun run;
    run.label = std::move(label);
    run.events = events;
    run.wallSeconds = seconds;
    run.eventsPerSec =
        seconds > 0 ? static_cast<double>(events) / seconds : 0;
    run.peakRssBytes = obs::HostStats::peakRssBytes();
    return run;
}

/**
 * Merge @p runs into the jrs-bench-v1 trajectory file at @p path
 * (schema in prof/bench.h), replacing same-label entries and creating
 * the file — or restarting an old-schema/corrupt one — as needed.
 * Exits non-zero on I/O failure, like the rest of the bench helpers.
 */
inline void
upsertBenchRuns(const std::string &path, const std::string &suite,
                std::vector<prof::BenchRun> runs)
{
    prof::BenchReport report = prof::BenchReport::loadOrEmpty(path,
                                                              suite);
    for (prof::BenchRun &run : runs)
        report.upsert(std::move(run));
    try {
        report.writeJson(path);
    } catch (const VmError &e) {
        std::cerr << "error: " << e.what() << '\n';
        std::exit(1);
    }
}

} // namespace jrs::bench

#endif // JRS_BENCH_BENCH_UTIL_H
