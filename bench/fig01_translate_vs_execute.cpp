/**
 * @file
 * Figure 1: where the time goes in JIT execution, and how much an
 * ideal (oracle) compile-or-interpret heuristic could save.
 *
 * For each workload we run the paper's three-run procedure: pure
 * interpretation, compile-everything, then the "opt" oracle computed
 * from per-method crossovers N_i = T_i / (I_i - E_i). Columns mirror
 * the figure: the JIT bar split into translate/execute, opt normalized
 * to the JIT run, and the interpreter-to-JIT time ratio annotated on
 * top of each bar.
 */
#include "bench_util.h"
#include "harness/paper_data.h"

using namespace jrs;

int
main()
{
    bench::header(
        "Figure 1 — translate vs execute, default JIT vs opt oracle",
        "opt saves 10-15% on translation-heavy apps (db, javac, "
        "hello); ~0% where execution dominates (compress, jack)");

    Table t({"workload", "jit_insts", "translate%", "execute%",
             "opt/jit", "interp/jit", "oracle_compiles",
             "opt_saving%"});

    for (const WorkloadInfo *w : bench::suite(true)) {
        const OracleOutcome o = runOracleExperiment(*w, 0);
        const double jit_total =
            static_cast<double>(o.jitRun.totalEvents);
        const double translate =
            static_cast<double>(o.jitRun.inPhase(Phase::Translate));
        const double opt_ratio =
            static_cast<double>(o.oracleRun.totalEvents) / jit_total;
        const double interp_ratio =
            static_cast<double>(o.interpRun.totalEvents) / jit_total;
        t.addRow({
            w->name,
            withCommas(o.jitRun.totalEvents),
            fixed(100.0 * translate / jit_total, 1),
            fixed(100.0 * (jit_total - translate) / jit_total, 1),
            fixed(opt_ratio, 3),
            fixed(interp_ratio, 2),
            std::to_string(o.methodsCompiledByOracle) + "/"
                + std::to_string(o.jitRun.methodsCompiled),
            fixed(100.0 * (1.0 - opt_ratio), 1),
        });
    }
    t.print(std::cout);
    std::cout << "\npaper reference: oracle trims "
              << paper::kOracleSavingsLowPct << "-"
              << paper::kOracleSavingsHighPct
              << "% at best; most methods still benefit from JIT.\n";
    return 0;
}
