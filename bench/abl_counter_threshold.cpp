/**
 * @file
 * Ablation: invocation-counter thresholds vs the oracle.
 *
 * The paper concludes smarter heuristics buy at most 10-15% over
 * compile-on-first-invocation. This sweep shows where simple counter
 * policies (the strategy HotSpot later adopted) land between the
 * default JIT and the oracle.
 */
#include "bench_util.h"

using namespace jrs;

int
main()
{
    bench::header(
        "Ablation — counter-threshold sweep vs default JIT and oracle",
        "counter policies approach (but rarely match) the oracle");

    const std::uint64_t thresholds[] = {1, 2, 4, 8, 16, 64};

    Table t({"workload", "jit", "thr2", "thr4", "thr8", "thr16",
             "thr64", "oracle", "interp"});

    for (const WorkloadInfo *w : bench::suite(true)) {
        const OracleOutcome o = runOracleExperiment(*w, 0);
        const double jit_total =
            static_cast<double>(o.jitRun.totalEvents);

        std::vector<std::string> row{w->name, "1.000"};
        for (std::uint64_t thr : thresholds) {
            if (thr == 1)
                continue;  // identical to the default JIT
            RunSpec s;
            s.workload = w;
            s.policy = std::make_shared<CounterPolicy>(thr);
            const RunResult r = runWorkload(s);
            row.push_back(fixed(
                static_cast<double>(r.totalEvents) / jit_total, 3));
        }
        row.push_back(fixed(
            static_cast<double>(o.oracleRun.totalEvents) / jit_total,
            3));
        row.push_back(fixed(
            static_cast<double>(o.interpRun.totalEvents) / jit_total,
            3));
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "\n(all columns normalized to the default JIT's "
                 "simulated instruction count; lower is better)\n";
    return 0;
}
