/**
 * @file
 * Ablation: heap size × collector — how much of the dynamic stream
 * the collector adds, and what the pauses look like.
 *
 * Each grid point runs jit-mode with an allocation budget of 1/1024th
 * of the heap, so halving the heap halves the allocation headroom: the
 * classic space/time trade rendered as collector-event share and
 * worst-case pause (in emitted collector instructions, the
 * simulator's time unit). Mark-sweep pauses scale with the heap walk
 * (sweep is linear in the window), copying pauses with the live set —
 * visible directly in the max-pause column.
 *
 * Runs on the sweep engine; every point records its own stream
 * (collector traffic is part of the stream identity).
 */
#include "bench_util.h"
#include "sweep/grids.h"

using namespace jrs;

int
main(int argc, char **argv)
{
    const bench::SweepBenchArgs args =
        bench::parseSweepBenchArgs(argc, argv);
    bench::setupObs(args);

    bench::header(
        "Ablation — heap size x collector",
        "GC cost as collector-event share of the stream; budget = "
        "heap/1024, jit mode");

    sweep::SweepOptions opts;
    opts.jobs = args.jobs;
    opts.cacheDir = args.cacheDir;
    obs::PerfReportSet perfReports;
    bench::attachPerfObserver(opts, args, perfReports);
    prof::CctReportSet cctReports;
    bench::attachCctObserver(opts, args, cctReports);
    prof::SampleReportSet sampleReports;
    bench::attachSampleObserver(opts, args, sampleReports);
    sweep::SweepEngine engine(opts);
    const sweep::SweepResult result =
        engine.run(sweep::buildGcGrid());
    if (!result.allOk()) {
        for (const sweep::PointResult &p : result.points) {
            if (!p.ok)
                std::cerr << p.label << ": " << p.error << '\n';
        }
        bench::finishObs(args, &perfReports, &cctReports,
                         &sampleReports);
        return 1;
    }

    Table t({"workload", "collector", "heap", "collections",
             "gc events", "gc%", "max pause"});
    for (const WorkloadInfo *w : bench::suite()) {
        for (const gc::CollectorKind c : sweep::kGcGridCollectors) {
            for (const std::size_t hb : sweep::kGcHeapBytes) {
                const sweep::PointResult *p = result.find(
                    sweep::gcLabel(w->name, c, hb));
                t.addRow({w->name, gc::collectorName(c),
                          std::to_string(hb >> 20) + "m",
                          fixed(p->metric("collections"), 0),
                          withCommas(static_cast<std::uint64_t>(
                              p->metric("gc_events"))),
                          fixed(p->metric("gc_event_pct"), 2),
                          withCommas(static_cast<std::uint64_t>(
                              p->metric("max_pause_events")))});
            }
        }
    }
    t.print(std::cout);
    std::cout << "sweep: " << fixed(result.wallSeconds, 2) << "s, "
              << result.jobs << " jobs, "
              << result.traces.recordings << " recordings, "
              << result.traces.diskLoads << " disk loads\n";

    if (!args.json.empty())
        result.writeJson(args.json);
    bench::finishObs(args, &perfReports, &cctReports,
                     &sampleReports);
    return 0;
}
