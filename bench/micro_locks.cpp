/**
 * @file
 * google-benchmark microbenchmarks: real (host) time per monitor
 * operation for the three lock implementations, plus the end-to-end
 * simulator throughput on a reference workload. These complement the
 * simulated-cycle comparison of fig11 with wall-clock evidence that
 * the thin-lock fast path does less work.
 */
#include <benchmark/benchmark.h>

#include "harness/experiment.h"
#include "vm/sync/monitor_cache.h"
#include "vm/sync/thin_lock.h"

using namespace jrs;

namespace {

template <typename SyncT>
void
BM_UncontendedEnterExit(benchmark::State &state)
{
    Heap heap(1 << 20);
    TraceEmitter emitter(nullptr);
    SyncT sync(heap, emitter);
    const SimAddr obj = heap.allocObject(0, 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sync.enter(1, obj));
        sync.exit(1, obj);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

template <typename SyncT>
void
BM_RecursiveEnterExit(benchmark::State &state)
{
    Heap heap(1 << 20);
    TraceEmitter emitter(nullptr);
    SyncT sync(heap, emitter);
    const SimAddr obj = heap.allocObject(0, 2);
    (void)sync.enter(1, obj);  // outer hold
    for (auto _ : state) {
        benchmark::DoNotOptimize(sync.enter(1, obj));
        sync.exit(1, obj);
    }
}

void
BM_SimulatorThroughput(benchmark::State &state)
{
    const WorkloadInfo *w = findWorkload("compress");
    std::uint64_t events = 0;
    for (auto _ : state) {
        RunSpec s;
        s.workload = w;
        s.arg = 2000;
        s.policy = std::make_shared<AlwaysCompilePolicy>();
        const RunResult r = runWorkload(s);
        events += r.totalEvents;
        benchmark::DoNotOptimize(r.exitValue);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
    state.SetLabel("simulated instructions/sec in items/sec");
}

} // namespace

BENCHMARK(BM_UncontendedEnterExit<MonitorCacheSync>);
BENCHMARK(BM_UncontendedEnterExit<ThinLockSync>);
BENCHMARK(BM_UncontendedEnterExit<OneBitLockSync>);
BENCHMARK(BM_RecursiveEnterExit<MonitorCacheSync>);
BENCHMARK(BM_RecursiveEnterExit<ThinLockSync>);
BENCHMARK(BM_SimulatorThroughput);

BENCHMARK_MAIN();
