/**
 * @file
 * Ablation: on-stack replacement completes the tiered-compilation
 * story.
 *
 * abl_counter_threshold shows that invocation-counter policies strand
 * long-running loop methods in the interpreter (they are invoked
 * once). Adding a back-edge-triggered OSR transfer fixes exactly that:
 * counter+OSR approaches the default JIT while still skipping the
 * cold one-shot methods — which is the modern tiered-VM design the
 * paper's Section 3 analysis was groping toward.
 */
#include "bench_util.h"

using namespace jrs;

namespace {

RunResult
run(const WorkloadInfo &w, std::shared_ptr<CompilationPolicy> policy,
    std::uint64_t osr_threshold)
{
    const Program prog = w.build();
    EngineConfig cfg;
    cfg.policy = std::move(policy);
    cfg.osrBackEdgeThreshold = osr_threshold;
    ExecutionEngine engine(prog, cfg);
    return engine.run(w.smallArg);
}

} // namespace

int
main()
{
    bench::header(
        "Ablation — counter policy with and without OSR",
        "OSR rescues loop-dominated methods that invocation counters "
        "never recompile");

    Table t({"workload", "jit", "counter8", "counter8+osr",
             "osr_transfers", "interp"});

    for (const WorkloadInfo *w : bench::suite(true)) {
        const RunResult jit =
            run(*w, std::make_shared<AlwaysCompilePolicy>(), 0);
        const RunResult counter =
            run(*w, std::make_shared<CounterPolicy>(8), 0);
        const RunResult tiered =
            run(*w, std::make_shared<CounterPolicy>(8), 64);
        const RunResult interp =
            run(*w, std::make_shared<NeverCompilePolicy>(), 0);
        if (jit.exitValue != tiered.exitValue)
            throw VmError(std::string(w->name) + ": OSR diverged");
        const double base = static_cast<double>(jit.totalEvents);
        t.addRow({
            w->name,
            "1.000",
            fixed(static_cast<double>(counter.totalEvents) / base, 3),
            fixed(static_cast<double>(tiered.totalEvents) / base, 3),
            withCommas(tiered.osrTransitions),
            fixed(static_cast<double>(interp.totalEvents) / base, 3),
        });
    }
    t.print(std::cout);
    std::cout << "\n(normalized to the default JIT; lower is better)\n";
    return 0;
}
