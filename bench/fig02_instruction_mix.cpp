/**
 * @file
 * Figure 2: dynamic native instruction mix, cumulative over the
 * SpecJVM98-like suite, interpreter vs JIT mode.
 *
 * The paper's observations to reproduce: 25-40% memory accesses and
 * 15-20% control transfers in both modes; the interpreter ~5% more
 * memory-heavy (operand stack in memory) and much richer in indirect
 * jumps (switch dispatch), while JIT code shifts toward branches and
 * direct calls.
 */
#include "arch/mix/instruction_mix.h"
#include "bench_util.h"

using namespace jrs;

int
main()
{
    bench::header(
        "Figure 2 — cumulative instruction mix, interp vs JIT",
        "interp: more loads/stores + indirect jumps; JIT: stack ops "
        "become register ops, virtual calls get inlined stubs");

    InstructionMix interp_mix, jit_mix;
    for (const WorkloadInfo *w : bench::suite()) {
        (void)runBothModes(*w, 0, &interp_mix, &jit_mix);
    }

    Table t({"category", "interp%", "jit%"});
    auto row = [&](const char *name, std::uint64_t i, std::uint64_t j) {
        t.addRow({name, fixed(interp_mix.pct(i), 2),
                  fixed(jit_mix.pct(j), 2)});
    };
    row("load", interp_mix.count(NKind::Load),
        jit_mix.count(NKind::Load));
    row("store", interp_mix.count(NKind::Store),
        jit_mix.count(NKind::Store));
    row("memory (total)", interp_mix.memoryOps(), jit_mix.memoryOps());
    row("int alu/mul/div", interp_mix.intOps(), jit_mix.intOps());
    row("fp ops", interp_mix.fpOps(), jit_mix.fpOps());
    row("cond branch", interp_mix.count(NKind::Branch),
        jit_mix.count(NKind::Branch));
    row("direct jump", interp_mix.count(NKind::Jump),
        jit_mix.count(NKind::Jump));
    row("indirect jump", interp_mix.count(NKind::IndirectJump),
        jit_mix.count(NKind::IndirectJump));
    row("call", interp_mix.count(NKind::Call),
        jit_mix.count(NKind::Call));
    row("indirect call", interp_mix.count(NKind::IndirectCall),
        jit_mix.count(NKind::IndirectCall));
    row("ret", interp_mix.count(NKind::Ret), jit_mix.count(NKind::Ret));
    row("control (total)", interp_mix.controlOps(),
        jit_mix.controlOps());
    row("indirect (total)", interp_mix.indirectOps(),
        jit_mix.indirectOps());
    t.print(std::cout);

    std::cout << "\ntotal dynamic instructions: interp "
              << withCommas(interp_mix.total()) << ", jit "
              << withCommas(jit_mix.total()) << "\n";
    return 0;
}
