/**
 * @file
 * Table 3: L1 references and misses per workload, interpreter vs JIT.
 * Configuration from the paper: 64KB caches, 32-byte lines, 2-way
 * I-cache, 4-way D-cache.
 *
 * To reproduce: interpreter I-hit rates > 99.9% (the switch fits in
 * cache); JIT D-reference counts shrink to a fraction of the
 * interpreter's (bytecode no longer read as data, stack in registers)
 * while absolute JIT miss counts are higher (code generation and
 * installation).
 */
#include "arch/cache/cache.h"
#include "bench_util.h"

using namespace jrs;

int
main()
{
    bench::header(
        "Table 3 — cache performance (64K, 32B; I 2-way, D 4-way)",
        "interp I-hit > 99.9%; JIT D-refs 10-80% of interp's; JIT "
        "misses higher in absolute terms");

    Table t({"workload", "mode", "i_refs", "i_misses", "i_mr%",
             "d_refs", "d_misses", "d_mr%", "d_wmiss%"});

    const CacheConfig icfg{64 * 1024, 32, 2, true};
    const CacheConfig dcfg{64 * 1024, 32, 4, true};

    for (const WorkloadInfo *w : bench::suite(true)) {
        CacheSink interp_sink(icfg, dcfg);
        CacheSink jit_sink(icfg, dcfg);
        (void)runBothModes(*w, 0, &interp_sink, &jit_sink);
        for (const bool jit : {false, true}) {
            const CacheSink &s = jit ? jit_sink : interp_sink;
            const CacheStats &ic = s.icache().stats();
            const CacheStats &dc = s.dcache().stats();
            t.addRow({
                w->name,
                jit ? "jit" : "interp",
                withCommas(ic.accesses()),
                withCommas(ic.misses()),
                fixed(100.0 * ic.missRate(), 3),
                withCommas(dc.accesses()),
                withCommas(dc.misses()),
                fixed(100.0 * dc.missRate(), 3),
                fixed(100.0 * dc.writeMissFraction(), 1),
            });
        }
    }
    t.print(std::cout);
    return 0;
}
