/**
 * @file
 * Figure 6: miss behaviour over the course of execution for db,
 * interpreter vs JIT mode.
 *
 * To reproduce: the interpreter shows an initial class-loading spike
 * then steady locality; the JIT shows clustered spikes wherever groups
 * of methods are translated in rapid succession (visible here as
 * windows whose translate-event share and write-miss counts jump).
 */
#include "arch/cache/time_series.h"
#include "bench_util.h"

using namespace jrs;

namespace {

void
printSeries(const char *mode, const TimeSeriesCacheSink &ts)
{
    std::cout << "\n" << mode << " (window = "
              << withCommas(ts.windowEvents()) << " instructions)\n";
    Table t({"window", "i_misses", "d_misses", "d_write_misses",
             "translate_insts", "profile"});
    const auto &samples = ts.samples();
    std::uint64_t max_d = 1;
    for (const MissSample &s : samples)
        max_d = std::max(max_d, s.dMisses);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const MissSample &s = samples[i];
        const int bar_len = static_cast<int>(
            40.0 * static_cast<double>(s.dMisses)
            / static_cast<double>(max_d));
        t.addRow({std::to_string(i), withCommas(s.iMisses),
                  withCommas(s.dMisses), withCommas(s.dWriteMisses),
                  withCommas(s.translateEvents),
                  std::string(static_cast<std::size_t>(bar_len), '#')});
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    bench::header(
        "Figure 6 — db miss-rate timeline, interp vs JIT",
        "interp: initial spike, then flat; JIT: clustered translation "
        "spikes of write misses");

    const WorkloadInfo *db = findWorkload("db");
    const CacheConfig icfg{64 * 1024, 32, 2, true};
    const CacheConfig dcfg{64 * 1024, 32, 4, true};

    // Window count ~40 per mode: derive window from a dry run.
    const ModePair sizes = runBothModes(*db, 0, nullptr, nullptr);
    TimeSeriesCacheSink interp_ts(
        icfg, dcfg, std::max<std::uint64_t>(
                        1, sizes.interp.totalEvents / 40));
    TimeSeriesCacheSink jit_ts(
        icfg, dcfg,
        std::max<std::uint64_t>(1, sizes.jit.totalEvents / 40));
    (void)runBothModes(*db, 0, &interp_ts, &jit_ts);

    printSeries("interpreter", interp_ts);
    printSeries("jit", jit_ts);
    return 0;
}
