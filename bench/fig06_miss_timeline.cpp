/**
 * @file
 * Figure 6: miss behaviour over the course of execution for db,
 * interpreter vs JIT mode.
 *
 * To reproduce: the interpreter shows an initial class-loading spike
 * then steady locality; the JIT shows clustered spikes wherever groups
 * of methods are translated in rapid succession (visible here as
 * windows whose translate-event share and write-miss counts jump).
 *
 * Runs on the sweep engine (`--jobs N`, `--json FILE`, `--cache-dir
 * DIR`): each mode's stream is recorded once and replayed into an
 * attributed split L1 whose IntervalTimeline (obs/perf.h) provides
 * the windowed sampling — the window is sized to ~40 samples straight
 * from the recording's event count, so the old dry-run pass is gone.
 * `--compare-serial` also runs the original hand-rolled
 * TimeSeriesCacheSink on a live VM run and asserts both paths produce
 * bit-identical curves.
 */
#include "arch/cache/time_series.h"
#include "bench_util.h"

using namespace jrs;

namespace {

constexpr CacheConfig kIcfg{64 * 1024, 32, 2, true};
constexpr CacheConfig kDcfg{64 * 1024, 32, 4, true};
constexpr std::uint64_t kTargetWindows = 40;

/** The figure's curve for one mode, copied out of the sweep sink. */
struct Curve {
    std::uint64_t window = 0;  ///< events per sample
    std::vector<obs::IntervalSample> samples;
};

std::uint64_t
dMisses(const obs::IntervalSample &s)
{
    return s.bad[static_cast<std::size_t>(PerfKind::DCacheLoad)]
        + s.bad[static_cast<std::size_t>(PerfKind::DCacheStore)];
}

sweep::SweepPoint
timelinePoint(bool jit, Curve *out)
{
    return sweep::makePoint<obs::AttributedCaches>(
        std::string("fig06/db/") + (jit ? "jit" : "interp"),
        sweep::traceKey("db", jit ? sweep::ExecMode::jit()
                                  : sweep::ExecMode::interp()),
        [](const RecordedRun &run) {
            obs::PerfOptions popt;
            popt.timelineWindow = std::max<std::uint64_t>(
                1, run.trace->size() / kTargetWindows);
            auto map = run.methods != nullptr
                ? run.methods
                : std::make_shared<const obs::MethodMap>();
            return std::make_unique<obs::AttributedCaches>(
                kIcfg, kDcfg, std::move(map), popt);
        },
        [out](obs::AttributedCaches &sink, const RecordedRun &) {
            const obs::PerfAttribution &perf = sink.perf();
            out->window = perf.timelineWindow();
            out->samples = perf.timeline();
            std::uint64_t i = 0, d = 0, w = 0;
            for (const obs::IntervalSample &s : out->samples) {
                i += s.bad[static_cast<std::size_t>(
                    PerfKind::ICacheFetch)];
                d += dMisses(s);
                w += s.bad[static_cast<std::size_t>(
                    PerfKind::DCacheStore)];
            }
            return std::vector<sweep::Metric>{
                {"windows",
                 static_cast<double>(out->samples.size())},
                {"i_misses", static_cast<double>(i)},
                {"d_misses", static_cast<double>(d)},
                {"d_write_misses", static_cast<double>(w)},
            };
        });
}

void
printSeries(const char *mode, const Curve &curve)
{
    std::cout << "\n" << mode << " (window = "
              << withCommas(curve.window) << " instructions)\n";
    Table t({"window", "i_misses", "d_misses", "d_write_misses",
             "translate_insts", "profile"});
    std::uint64_t max_d = 1;
    for (const obs::IntervalSample &s : curve.samples)
        max_d = std::max(max_d, dMisses(s));
    for (std::size_t i = 0; i < curve.samples.size(); ++i) {
        const obs::IntervalSample &s = curve.samples[i];
        const int bar_len = static_cast<int>(
            40.0 * static_cast<double>(dMisses(s))
            / static_cast<double>(max_d));
        t.addRow({std::to_string(i),
                  withCommas(s.bad[static_cast<std::size_t>(
                      PerfKind::ICacheFetch)]),
                  withCommas(dMisses(s)),
                  withCommas(s.bad[static_cast<std::size_t>(
                      PerfKind::DCacheStore)]),
                  withCommas(s.translateEvents),
                  std::string(static_cast<std::size_t>(bar_len), '#')});
    }
    t.print(std::cout);
}

/** The original implementation: live runs through the hand-rolled
    windowed sampler, with a dry run to size the windows. */
std::pair<TimeSeriesCacheSink, TimeSeriesCacheSink>
runLegacyBaseline(const WorkloadInfo &db)
{
    const ModePair sizes = runBothModes(db, 0, nullptr, nullptr);
    std::pair<TimeSeriesCacheSink, TimeSeriesCacheSink> out{
        TimeSeriesCacheSink(
            kIcfg, kDcfg,
            std::max<std::uint64_t>(
                1, sizes.interp.totalEvents / kTargetWindows)),
        TimeSeriesCacheSink(
            kIcfg, kDcfg,
            std::max<std::uint64_t>(
                1, sizes.jit.totalEvents / kTargetWindows))};
    (void)runBothModes(db, 0, &out.first, &out.second);
    return out;
}

/** Bit-identical curve comparison between the two implementations. */
bool
identical(const TimeSeriesCacheSink &legacy, const Curve &curve)
{
    if (legacy.windowEvents() != curve.window
        || legacy.samples().size() != curve.samples.size()) {
        return false;
    }
    for (std::size_t i = 0; i < curve.samples.size(); ++i) {
        const MissSample &a = legacy.samples()[i];
        const obs::IntervalSample &b = curve.samples[i];
        if (a.iMisses
                != b.bad[static_cast<std::size_t>(
                    PerfKind::ICacheFetch)]
            || a.dMisses != dMisses(b)
            || a.dWriteMisses
                != b.bad[static_cast<std::size_t>(
                    PerfKind::DCacheStore)]
            || a.translateEvents != b.translateEvents) {
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::SweepBenchArgs args =
        bench::parseSweepBenchArgs(argc, argv);
    bench::setupObs(args);

    bench::header(
        "Figure 6 — db miss-rate timeline, interp vs JIT",
        "interp: initial spike, then flat; JIT: clustered translation "
        "spikes of write misses");

    Curve interp, jit;
    sweep::SweepOptions opts;
    opts.jobs = args.jobs;
    opts.cacheDir = args.cacheDir;
    obs::PerfReportSet perfReports;
    bench::attachPerfObserver(opts, args, perfReports);
    prof::CctReportSet cctReports;
    bench::attachCctObserver(opts, args, cctReports);
    prof::SampleReportSet sampleReports;
    bench::attachSampleObserver(opts, args, sampleReports);
    sweep::SweepEngine engine(opts);
    const sweep::SweepResult result = engine.run(
        {timelinePoint(false, &interp), timelinePoint(true, &jit)});
    if (!result.allOk()) {
        for (const sweep::PointResult &p : result.points) {
            if (!p.ok)
                std::cerr << p.label << ": " << p.error << '\n';
        }
        bench::finishObs(args, &perfReports, &cctReports,
                         &sampleReports);
        return 1;
    }

    printSeries("interpreter", interp);
    printSeries("jit", jit);
    std::cout << "sweep: " << fixed(result.wallSeconds, 2) << "s, "
              << result.jobs << " jobs, "
              << result.traces.recordings << " recordings, "
              << result.traces.diskLoads << " disk loads\n";

    if (!args.json.empty())
        result.writeJson(args.json);

    if (args.compareSerial) {
        const WorkloadInfo *db = findWorkload("db");
        const auto legacy = runLegacyBaseline(*db);
        const bool same = identical(legacy.first, interp)
            && identical(legacy.second, jit);
        std::cout << "\nlegacy TimeSeriesCacheSink curves "
                     "bit-identical: "
                  << (same ? "yes" : "NO") << '\n';
        if (!same) {
            bench::finishObs(args, &perfReports, &cctReports,
                         &sampleReports);
            return 1;
        }
    }
    bench::finishObs(args, &perfReports, &cctReports,
                     &sampleReports);
    return 0;
}
