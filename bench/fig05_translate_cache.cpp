/**
 * @file
 * Figure 5: cache misses inside the translate routine vs the rest of
 * the JIT execution (64K caches, I 2-way, D 4-way, 32B lines).
 *
 * To reproduce: translation contributes ~30% of I-misses but 40-80%
 * of D-misses for translation-heavy programs, and write misses make
 * up ~60% of the misses inside translate (code installation).
 */
#include "arch/cache/cache.h"
#include "bench_util.h"
#include "harness/paper_data.h"

using namespace jrs;

int
main()
{
    bench::header(
        "Figure 5 — misses inside translate vs rest (JIT mode)",
        "translate: ~30% of I-misses, 40-80% of D-misses; ~60% of "
        "translate D-misses are writes");

    Table t({"workload", "i_miss_trans%", "d_miss_trans%",
             "wmiss_in_trans%", "i_mr_trans%", "i_mr_rest%",
             "d_mr_trans%", "d_mr_rest%"});

    const CacheConfig icfg{64 * 1024, 32, 2, true};
    const CacheConfig dcfg{64 * 1024, 32, 4, true};

    for (const WorkloadInfo *w : bench::suite(true)) {
        CacheSink sink(icfg, dcfg);
        RunSpec s;
        s.workload = w;
        s.policy = std::make_shared<AlwaysCompilePolicy>();
        s.sink = &sink;
        (void)runWorkload(s);

        const CacheStats &it =
            sink.icache().phaseStats(Phase::Translate);
        const CacheStats ir =
            sink.icache().statsExcluding(Phase::Translate);
        const CacheStats &dt =
            sink.dcache().phaseStats(Phase::Translate);
        const CacheStats dr =
            sink.dcache().statsExcluding(Phase::Translate);
        const std::uint64_t i_all = it.misses() + ir.misses();
        const std::uint64_t d_all = dt.misses() + dr.misses();
        t.addRow({
            w->name,
            fixed(percent(it.misses(), i_all), 1),
            fixed(percent(dt.misses(), d_all), 1),
            fixed(100.0 * dt.writeMissFraction(), 1),
            fixed(100.0 * it.missRate(), 2),
            fixed(100.0 * ir.missRate(), 2),
            fixed(100.0 * dt.missRate(), 2),
            fixed(100.0 * dr.missRate(), 2),
        });
    }
    t.print(std::cout);
    std::cout << "\npaper reference: translate D-miss share "
              << paper::kTranslateDMissShareLow << "-"
              << paper::kTranslateDMissShareHigh
              << "%, write-miss share inside translate ~"
              << paper::kTranslateWriteMissPct << "%.\n";
    return 0;
}
