/**
 * @file
 * Table 1: runtime memory footprint of the interpreter vs the JIT.
 *
 * The JIT column adds the code cache, the compiler image and its peak
 * working memory on top of everything the interpreter needs. The paper
 * reports a 10-33% overhead, more pronounced for programs with small
 * dynamic memory usage (db).
 */
#include "bench_util.h"
#include "harness/paper_data.h"

using namespace jrs;

int
main()
{
    bench::header("Table 1 — memory footprint, interpreter vs JIT",
                  "JIT needs 10-33% more memory; overhead is largest "
                  "for small-heap applications");

    Table t({"workload", "interp_kb", "jit_kb", "overhead%",
             "code_cache_kb", "heap_kb"});

    for (const WorkloadInfo *w : bench::suite(true)) {
        const ModePair mp = runBothModes(*w, 0, nullptr, nullptr);
        const double interp_b = static_cast<double>(
            mp.interp.memory.interpreterTotal());
        const double jit_b =
            static_cast<double>(mp.jit.memory.jitTotal());
        t.addRow({
            w->name,
            withCommas(static_cast<std::uint64_t>(interp_b) / 1024),
            withCommas(static_cast<std::uint64_t>(jit_b) / 1024),
            fixed(100.0 * (jit_b - interp_b) / interp_b, 1),
            withCommas(mp.jit.memory.codeCacheBytes / 1024),
            withCommas(mp.jit.memory.heapBytes / 1024),
        });
    }
    t.print(std::cout);
    std::cout << "\npaper reference: overhead "
              << paper::kJitMemOverheadLowPct << "-"
              << paper::kJitMemOverheadHighPct << "%.\n";
    return 0;
}
