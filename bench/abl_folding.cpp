/**
 * @file
 * Ablation: interpreter dispatch folding — the paper's Section 4.4
 * suggestion that a picoJava-style interpreter which folds common
 * bytecode sequences "can mitigate the effect of inaccurate target
 * prediction and scale better".
 *
 * Expected: a sizeable share of dispatches folds away (constants and
 * local loads are the most frequent bytecodes), indirect jumps drop
 * proportionally, and wide-issue IPC scaling improves.
 */
#include "arch/mix/instruction_mix.h"
#include "arch/pipeline/pipeline.h"
#include "bench_util.h"

using namespace jrs;

namespace {

struct FoldRun {
    RunResult res;
    std::uint64_t indirects;
    double ipc1;
    double ipc8;
};

FoldRun
runInterp(const WorkloadInfo &w, bool folding)
{
    const Program prog = w.build();
    InstructionMix mix;
    PipelineConfig c1;
    c1.issueWidth = 1;
    PipelineConfig c8;
    c8.issueWidth = 8;
    PipelineSim p1(c1), p8(c8);
    MultiSink multi;
    multi.add(&mix);
    multi.add(&p1);
    multi.add(&p8);

    EngineConfig cfg;
    cfg.policy = std::make_shared<NeverCompilePolicy>();
    cfg.interpreterFolding = folding;
    cfg.sink = &multi;
    ExecutionEngine engine(prog, cfg);
    FoldRun out{engine.run(w.smallArg), mix.indirectOps(), p1.ipc(),
                p8.ipc()};
    return out;
}

} // namespace

int
main()
{
    bench::header(
        "Ablation — interpreter dispatch folding (paper Sec. 4.4)",
        "folding constant/load pairs removes dispatches -> fewer "
        "indirect jumps, better wide-issue scaling");

    Table t({"workload", "insts", "insts_folded", "folded_disp",
             "indirects", "indirects_folded", "scal_w8/w1",
             "scal_folded"});

    for (const WorkloadInfo *w : bench::suite(true)) {
        const FoldRun off = runInterp(*w, false);
        const FoldRun on = runInterp(*w, true);
        if (off.res.exitValue != on.res.exitValue)
            throw VmError(std::string(w->name) + ": folding diverged");
        t.addRow({
            w->name,
            withCommas(off.res.totalEvents),
            withCommas(on.res.totalEvents),
            withCommas(on.res.dispatchesFolded),
            withCommas(off.indirects),
            withCommas(on.indirects),
            fixed(off.ipc8 / off.ipc1, 2),
            fixed(on.ipc8 / on.ipc1, 2),
        });
    }
    t.print(std::cout);
    return 0;
}
