/**
 * @file
 * Ablation: BTB vs path-history target cache on indirect transfers —
 * the paper's concluding recommendation for interpreter-mode
 * execution, quantified.
 *
 * Expected: the BTB stays near ~90% misprediction on the interpreter's
 * dispatch jump, while the target cache exploits repeating bytecode
 * patterns (loop bodies) and cuts the miss rate by an integer factor.
 */
#include "arch/bpred/btb.h"
#include "arch/bpred/target_cache.h"
#include "bench_util.h"

using namespace jrs;

namespace {

class VsSink : public TraceSink {
  public:
    void onEvent(const TraceEvent &ev) override {
        if (ev.kind != NKind::IndirectJump
            && ev.kind != NKind::IndirectCall) {
            return;
        }
        ++indirects_;
        if (btb_.predict(ev.pc) != ev.target)
            ++btbMiss_;
        btb_.update(ev.pc, ev.target);
        if (tc_.predict(ev.pc) != ev.target)
            ++tcMiss_;
        tc_.update(ev.pc, ev.target);
        if (tcBig_.predict(ev.pc) != ev.target)
            ++tcBigMiss_;
        tcBig_.update(ev.pc, ev.target);
    }

    std::uint64_t indirects_ = 0;
    std::uint64_t btbMiss_ = 0, tcMiss_ = 0, tcBigMiss_ = 0;

  private:
    Btb btb_{1024};
    TargetCache tc_{1024};
    TargetCache tcBig_{4096};
};

} // namespace

int
main()
{
    bench::header(
        "Ablation — BTB vs target cache for indirect transfers",
        "interpreter dispatch becomes predictable when the predictor "
        "keys on the recent TARGET path (recent opcodes)");

    Table t({"workload", "mode", "indirects", "btb_miss%",
             "tcache1k_miss%", "tcache4k_miss%", "improvement"});

    for (const WorkloadInfo *w : bench::suite(true)) {
        VsSink interp_sink, jit_sink;
        (void)runBothModes(*w, 0, &interp_sink, &jit_sink);
        for (const bool jit : {false, true}) {
            const VsSink &s = jit ? jit_sink : interp_sink;
            if (s.indirects_ == 0)
                continue;
            const double btb = percent(s.btbMiss_, s.indirects_);
            const double tc = percent(s.tcMiss_, s.indirects_);
            t.addRow({
                w->name,
                jit ? "jit" : "interp",
                withCommas(s.indirects_),
                fixed(btb, 1),
                fixed(tc, 1),
                fixed(percent(s.tcBigMiss_, s.indirects_), 1),
                tc > 0 ? fixed(btb / tc, 2) + "x" : "inf",
            });
        }
    }
    t.print(std::cout);
    return 0;
}
