/**
 * @file
 * Ablation: JIT inlining + monomorphic devirtualization — the
 * optimization the paper's Section 7 proposes triggering from BTB hit
 * counters ("replace the indirect branch instruction with the code of
 * the invoked method").
 *
 * Expected: indirect calls largely vanish (most virtual sites in the
 * suite are monomorphic), total JIT-mode instruction counts drop by
 * the call/frame overhead, and dispatch-heavy workloads (jess, db)
 * benefit most.
 */
#include "arch/mix/instruction_mix.h"
#include "bench_util.h"

using namespace jrs;

int
main()
{
    bench::header(
        "Ablation — JIT inlining & devirtualization (paper Sec. 7)",
        "virtual-call indirect branches replaced by inlined callee "
        "code at monomorphic sites");

    Table t({"workload", "jit_insts", "inlined_insts", "speedup",
             "ind_calls", "ind_calls_inl", "sites_inlined",
             "sites_devirt"});

    for (const WorkloadInfo *w : bench::suite(true)) {
        const Program p1 = w->build();
        InstructionMix plain_mix;
        RunResult plain;
        {
            EngineConfig cfg;
            cfg.policy = std::make_shared<AlwaysCompilePolicy>();
            cfg.sink = &plain_mix;
            ExecutionEngine e(p1, cfg);
            plain = e.run(w->smallArg);
        }
        const Program p2 = w->build();
        InstructionMix inl_mix;
        RunResult inl;
        {
            EngineConfig cfg;
            cfg.policy = std::make_shared<AlwaysCompilePolicy>();
            cfg.jitInlining = true;
            cfg.sink = &inl_mix;
            ExecutionEngine e(p2, cfg);
            inl = e.run(w->smallArg);
        }
        if (plain.exitValue != inl.exitValue)
            throw VmError(std::string(w->name) + ": inlining diverged");
        t.addRow({
            w->name,
            withCommas(plain.totalEvents),
            withCommas(inl.totalEvents),
            fixed(static_cast<double>(plain.totalEvents)
                      / static_cast<double>(inl.totalEvents),
                  3) + "x",
            withCommas(plain_mix.count(NKind::IndirectCall)),
            withCommas(inl_mix.count(NKind::IndirectCall)),
            withCommas(inl.callsInlined),
            withCommas(inl.callsDevirtualized),
        });
    }
    t.print(std::cout);
    return 0;
}
