/**
 * @file
 * Table 2: branch misprediction rates for four predictors, per
 * workload, interpreter vs JIT mode.
 *
 * The rate covers all transfers needing prediction: conditional
 * branches through each scheme plus indirect jumps/calls through a
 * 1K-entry BTB. To reproduce: interpreter accuracy is far worse
 * (65-87% for GShare vs 80-92% in JIT mode) because all Java branch
 * sites alias onto one handler branch and the dispatch indirect jump
 * defeats the BTB.
 */
#include "arch/bpred/predictors.h"
#include "bench_util.h"
#include "harness/paper_data.h"

using namespace jrs;

int
main()
{
    bench::header(
        "Table 2 — misprediction rates (cond + indirect), 4 schemes",
        "GShare accuracy: interp 65-87%, JIT 80-92%; 2bit << bht << "
        "gshare ~ two-level");

    Table t({"workload", "mode", "2bit%", "bht%", "gshare%",
             "two_level%", "indirect_mr%", "branches"});

    for (const WorkloadInfo *w : bench::suite(true)) {
        PredictorBank interp_bank, jit_bank;
        (void)runBothModes(*w, 0, &interp_bank, &jit_bank);
        for (const bool jit : {false, true}) {
            const PredictorBank &bank = jit ? jit_bank : interp_bank;
            const auto res = bank.results();
            const double ind_rate =
                bank.indirects() == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(bank.btbMisses())
                        / static_cast<double>(bank.indirects());
            t.addRow({
                w->name,
                jit ? "jit" : "interp",
                fixed(100.0 * res[0].mispredictRate(), 1),
                fixed(100.0 * res[1].mispredictRate(), 1),
                fixed(100.0 * res[2].mispredictRate(), 1),
                fixed(100.0 * res[3].mispredictRate(), 1),
                fixed(ind_rate, 1),
                withCommas(res[0].condBranches + res[0].indirects),
            });
        }
    }
    t.print(std::cout);
    std::cout << "\npaper reference: GShare correct-prediction ranges "
              << paper::kGshareInterpAccLow << "-"
              << paper::kGshareInterpAccHigh << "% (interp) vs "
              << paper::kGshareJitAccLow << "-"
              << paper::kGshareJitAccHigh << "% (JIT).\n";
    return 0;
}
