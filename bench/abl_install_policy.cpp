/**
 * @file
 * Ablation: what the paper's "generate code directly into the
 * I-cache" proposal would buy.
 *
 * Code-install stores are compulsory D-cache write misses under
 * write-allocate. We compare three D-cache policies on the JIT-mode
 * stream: (1) write-allocate (the paper's baseline), (2) write-no-
 * allocate (installs bypass the D-cache — an approximation of
 * streaming the code straight toward the I-cache), and (3) a
 * hypothetical filter that drops install stores entirely (the ideal
 * "write into the I-cache" mechanism).
 */
#include "arch/cache/cache.h"
#include "bench_util.h"

using namespace jrs;

namespace {

/** D-cache that ignores stores into the code-cache segment. */
class FilteredCacheSink : public TraceSink {
  public:
    FilteredCacheSink(CacheConfig icfg, CacheConfig dcfg)
        : icache_(icfg), dcache_(dcfg) {}

    void onEvent(const TraceEvent &ev) override {
        icache_.access(ev.pc, false, ev.phase);
        if (ev.kind == NKind::Load) {
            dcache_.access(ev.mem, false, ev.phase);
        } else if (ev.kind == NKind::Store) {
            if (inSegment(ev.mem, seg::kCodeCache))
                return;  // installed directly into the I-cache
            dcache_.access(ev.mem, true, ev.phase);
        }
    }

    const Cache &dcache() const { return dcache_; }

  private:
    Cache icache_;
    Cache dcache_;
};

} // namespace

int
main()
{
    bench::header(
        "Ablation — code-install policy (paper Section 6 proposal)",
        "write misses from code installation vanish if generated code "
        "can be written into the I-cache");

    const CacheConfig icfg{64 * 1024, 32, 2, true};
    const CacheConfig wa{64 * 1024, 32, 4, true};
    const CacheConfig wna{64 * 1024, 32, 4, false};

    Table t({"workload", "d_misses_walloc", "d_misses_wnoalloc",
             "d_misses_icache_install", "reduction%"});

    for (const WorkloadInfo *w : bench::suite(true)) {
        CacheSink s_wa(icfg, wa);
        CacheSink s_wna(icfg, wna);
        FilteredCacheSink s_filt(icfg, wa);
        MultiSink multi;
        multi.add(&s_wa);
        multi.add(&s_wna);
        multi.add(&s_filt);

        RunSpec spec;
        spec.workload = w;
        spec.policy = std::make_shared<AlwaysCompilePolicy>();
        spec.sink = &multi;
        (void)runWorkload(spec);

        const std::uint64_t base = s_wa.dcache().stats().misses();
        const std::uint64_t ideal = s_filt.dcache().stats().misses();
        t.addRow({
            w->name,
            withCommas(base),
            withCommas(s_wna.dcache().stats().misses()),
            withCommas(ideal),
            fixed(percent(base - ideal, base), 1),
        });
    }
    t.print(std::cout);
    return 0;
}
