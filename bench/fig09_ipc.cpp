/**
 * @file
 * Figure 9: instruction execution rate (IPC) on the out-of-order
 * superscalar model at issue widths 1, 2, 4 and 8, per workload and
 * mode.
 *
 * To reproduce: interpreter IPC is HIGHER than JIT IPC at small
 * widths (better caches, unoptimized code with exploitable overlap),
 * but its scaling flattens at wide issue because fetch re-serializes
 * on the poorly-predicted dispatch indirect jump once per bytecode.
 *
 * `--perf-json FILE` additionally records each run's stream and
 * replays it through a perf-attribution pipeline (default config,
 * issue width 4), writing per-method CPI stacks per (workload, mode).
 * Without the flag the bench runs exactly as before — live, no
 * recording, listeners unset.
 */
#include "arch/pipeline/pipeline.h"
#include "bench_util.h"

using namespace jrs;

int
main(int argc, char **argv)
{
    const obs::ObsCli cli = bench::parseObsArgs(argc, argv);
    cli.setup();

    bench::header(
        "Figure 9 — IPC vs issue width (OOO model)",
        "interp IPC > jit IPC at narrow issue; interp scaling "
        "flattens at wide issue (indirect dispatch)");

    const std::uint32_t widths[] = {1, 2, 4, 8};

    Table t({"workload", "mode", "ipc_w1", "ipc_w2", "ipc_w4",
             "ipc_w8", "scaling_w8/w1"});

    obs::PerfReportSet reports;
    for (const WorkloadInfo *w : bench::suite(true)) {
        for (const bool jit : {false, true}) {
            std::vector<std::unique_ptr<PipelineSim>> sims;
            MultiSink multi;
            for (std::uint32_t wd : widths) {
                PipelineConfig cfg;
                cfg.issueWidth = wd;
                sims.push_back(std::make_unique<PipelineSim>(cfg));
                multi.add(sims.back().get());
            }
            RunSpec s;
            s.workload = w;
            s.policy = jit
                ? std::static_pointer_cast<CompilationPolicy>(
                      std::make_shared<AlwaysCompilePolicy>())
                : std::static_pointer_cast<CompilationPolicy>(
                      std::make_shared<NeverCompilePolicy>());
            s.sink = &multi;
            if (cli.perfRequested()) {
                const RecordedRun rec = recordWorkload(s);
                obs::AttributedPipeline attributed(PipelineConfig{},
                                                   rec.methods);
                rec.trace->replay(attributed);
                reports.add(std::string("fig09/") + w->name + "/"
                                + (jit ? "jit" : "interp"),
                            attributed.perf());
            } else {
                (void)runWorkload(s);
            }
            t.addRow({
                w->name,
                jit ? "jit" : "interp",
                fixed(sims[0]->ipc(), 2),
                fixed(sims[1]->ipc(), 2),
                fixed(sims[2]->ipc(), 2),
                fixed(sims[3]->ipc(), 2),
                fixed(sims[3]->ipc() / sims[0]->ipc(), 2),
            });
        }
    }
    t.print(std::cout);
    cli.writePerf(reports, std::cout);
    cli.finish(std::cout);
    return 0;
}
