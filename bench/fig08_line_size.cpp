/**
 * @file
 * Figure 8: effect of line size (8K direct-mapped, lines of 16, 32,
 * 64, 128 bytes), per workload and mode.
 *
 * To reproduce: larger lines monotonically help the I-cache; for the
 * D-cache the interpreter prefers SMALL (16B) lines in most programs
 * (methods average under 16 bytecode bytes, so longer lines fetch
 * little useful data), while JIT mode prefers 32-64B (object sizes).
 */
#include "arch/cache/cache.h"
#include "bench_util.h"

using namespace jrs;

int
main()
{
    bench::header(
        "Figure 8 — line-size sweep (8K direct-mapped; 16/32/64/128B)",
        "interp D-cache often best at 16B lines; JIT best at 32-64B");

    const std::uint32_t lines[] = {16, 32, 64, 128};

    Table t({"workload", "mode", "cache", "16B%", "32B%", "64B%",
             "128B%", "best"});

    for (const WorkloadInfo *w : bench::suite(true)) {
        for (const bool jit : {false, true}) {
            std::vector<std::unique_ptr<CacheSink>> sinks;
            MultiSink multi;
            for (std::uint32_t lb : lines) {
                sinks.push_back(std::make_unique<CacheSink>(
                    CacheConfig{8 * 1024, lb, 1, true},
                    CacheConfig{8 * 1024, lb, 1, true}));
                multi.add(sinks.back().get());
            }
            RunSpec s;
            s.workload = w;
            s.policy = jit
                ? std::static_pointer_cast<CompilationPolicy>(
                      std::make_shared<AlwaysCompilePolicy>())
                : std::static_pointer_cast<CompilationPolicy>(
                      std::make_shared<NeverCompilePolicy>());
            s.sink = &multi;
            (void)runWorkload(s);

            for (const bool dcache : {false, true}) {
                double mr[4];
                int best = 0;
                for (int k = 0; k < 4; ++k) {
                    mr[k] = dcache
                        ? sinks[k]->dcache().stats().missRate()
                        : sinks[k]->icache().stats().missRate();
                    if (mr[k] < mr[best])
                        best = k;
                }
                t.addRow({
                    w->name,
                    jit ? "jit" : "interp",
                    dcache ? "D" : "I",
                    fixed(100.0 * mr[0], 3),
                    fixed(100.0 * mr[1], 3),
                    fixed(100.0 * mr[2], 3),
                    fixed(100.0 * mr[3], 3),
                    std::to_string(lines[best]) + "B",
                });
            }
        }
    }
    t.print(std::cout);
    return 0;
}
