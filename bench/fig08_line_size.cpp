/**
 * @file
 * Figure 8: effect of line size (8K direct-mapped, lines of 16, 32,
 * 64, 128 bytes), per workload and mode.
 *
 * To reproduce: larger lines monotonically help the I-cache; for the
 * D-cache the interpreter prefers SMALL (16B) lines in most programs
 * (methods average under 16 bytecode bytes, so longer lines fetch
 * little useful data), while JIT mode prefers 32-64B (object sizes).
 *
 * Runs on the sweep engine — one recording per (workload, mode),
 * replayed into the four line-size models, streams in parallel across
 * `--jobs` workers. See fig07_associativity.cpp for the
 * `--compare-serial` / `--bench-json` semantics.
 */
#include <chrono>
#include <thread>

#include "arch/cache/cache.h"
#include "bench_util.h"
#include "sweep/grids.h"

using namespace jrs;

namespace {

struct SerialBaseline {
    double seconds = 0;
    // label -> (icache_miss_pct, dcache_miss_pct)
    std::vector<std::pair<std::string, std::pair<double, double>>>
        points;
};

/** The original implementation: one live VM run per (workload, mode)
    fanned out to all four line-size models through a MultiSink. */
SerialBaseline
runSerialBaseline()
{
    const auto t0 = std::chrono::steady_clock::now();
    SerialBaseline out;
    for (const WorkloadInfo *w : bench::suite(true)) {
        for (const bool jit : {false, true}) {
            std::vector<std::unique_ptr<CacheSink>> sinks;
            MultiSink multi;
            for (const std::uint32_t lb : sweep::kFig08Lines) {
                sinks.push_back(std::make_unique<CacheSink>(
                    CacheConfig{8 * 1024, lb, 1, true},
                    CacheConfig{8 * 1024, lb, 1, true}));
                multi.add(sinks.back().get());
            }
            RunSpec s;
            s.workload = w;
            s.policy = jit
                ? std::static_pointer_cast<CompilationPolicy>(
                      std::make_shared<AlwaysCompilePolicy>())
                : std::static_pointer_cast<CompilationPolicy>(
                      std::make_shared<NeverCompilePolicy>());
            s.sink = &multi;
            (void)runWorkload(s);
            for (std::size_t k = 0; k < sinks.size(); ++k) {
                out.points.emplace_back(
                    sweep::fig08Label(w->name, jit,
                                      sweep::kFig08Lines[k]),
                    std::make_pair(
                        100.0
                            * sinks[k]->icache().stats().missRate(),
                        100.0
                            * sinks[k]->dcache().stats().missRate()));
            }
        }
    }
    out.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return out;
}

bool
identical(const SerialBaseline &serial,
          const sweep::SweepResult &swept)
{
    for (const auto &[label, miss] : serial.points) {
        const sweep::PointResult *p = swept.find(label);
        if (p == nullptr || !p->ok
            || p->metric("icache_miss_pct") != miss.first
            || p->metric("dcache_miss_pct") != miss.second) {
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::SweepBenchArgs args =
        bench::parseSweepBenchArgs(argc, argv);
    bench::setupObs(args);

    bench::header(
        "Figure 8 — line-size sweep (8K direct-mapped; 16/32/64/128B)",
        "interp D-cache often best at 16B lines; JIT best at 32-64B");

    sweep::SweepOptions opts;
    opts.jobs = args.jobs;
    opts.cacheDir = args.cacheDir;
    obs::PerfReportSet perfReports;
    bench::attachPerfObserver(opts, args, perfReports);
    prof::CctReportSet cctReports;
    bench::attachCctObserver(opts, args, cctReports);
    prof::SampleReportSet sampleReports;
    bench::attachSampleObserver(opts, args, sampleReports);
    sweep::SweepEngine engine(opts);
    const sweep::SweepResult result =
        engine.run(sweep::buildFig08Grid());
    if (!result.allOk()) {
        for (const sweep::PointResult &p : result.points) {
            if (!p.ok)
                std::cerr << p.label << ": " << p.error << '\n';
        }
        bench::finishObs(args, &perfReports, &cctReports,
                         &sampleReports);
        return 1;
    }

    Table t({"workload", "mode", "cache", "16B%", "32B%", "64B%",
             "128B%", "best"});
    for (const WorkloadInfo *w : bench::suite(true)) {
        for (const bool jit : {false, true}) {
            for (const bool dcache : {false, true}) {
                const char *metric =
                    dcache ? "dcache_miss_pct" : "icache_miss_pct";
                double mr[4];
                int best = 0;
                for (int k = 0; k < 4; ++k) {
                    mr[k] = result
                                .find(sweep::fig08Label(
                                    w->name, jit,
                                    sweep::kFig08Lines[k]))
                                ->metric(metric);
                    if (mr[k] < mr[best])
                        best = k;
                }
                t.addRow({
                    w->name,
                    jit ? "jit" : "interp",
                    dcache ? "D" : "I",
                    fixed(mr[0], 3),
                    fixed(mr[1], 3),
                    fixed(mr[2], 3),
                    fixed(mr[3], 3),
                    std::to_string(sweep::kFig08Lines[best]) + "B",
                });
            }
        }
    }
    t.print(std::cout);
    std::cout << "sweep: " << fixed(result.wallSeconds, 2) << "s, "
              << result.jobs << " jobs, "
              << result.traces.recordings << " recordings, "
              << result.traces.memoryHits << " memory hits, "
              << result.traces.diskLoads << " disk loads\n";

    if (!args.json.empty())
        result.writeJson(args.json);

    if (args.compareSerial || !args.benchJson.empty()) {
        const sweep::SweepResult warm =
            engine.run(sweep::buildFig08Grid());
        const SerialBaseline serial = runSerialBaseline();
        const bool same =
            identical(serial, result) && identical(serial, warm);
        std::cout << "\nserial " << fixed(serial.seconds, 2)
                  << "s | sweep cold " << fixed(result.wallSeconds, 2)
                  << "s (" << fixed(serial.seconds
                                        / result.wallSeconds, 2)
                  << "x) | sweep warm " << fixed(warm.wallSeconds, 2)
                  << "s (" << fixed(serial.seconds / warm.wallSeconds,
                                    2)
                  << "x) | results bit-identical: "
                  << (same ? "yes" : "NO") << '\n';
        if (!args.benchJson.empty()) {
            const std::uint64_t ev = bench::sweepEvents(result);
            prof::BenchRun sr =
                bench::benchRun("fig08/serial", ev, serial.seconds);
            sr.metrics.emplace_back("jobs",
                                    static_cast<double>(result.jobs));
            sr.metrics.emplace_back(
                "hw_threads",
                static_cast<double>(
                    std::thread::hardware_concurrency()));
            prof::BenchRun cold = bench::benchRun(
                "fig08/sweep_cold", ev, result.wallSeconds);
            cold.metrics.emplace_back(
                "speedup_vs_serial",
                serial.seconds / result.wallSeconds);
            prof::BenchRun warmRun = bench::benchRun(
                "fig08/sweep_warm", ev, warm.wallSeconds);
            warmRun.metrics.emplace_back(
                "speedup_vs_serial", serial.seconds / warm.wallSeconds);
            warmRun.metrics.emplace_back("bit_identical",
                                         same ? 1.0 : 0.0);
            bench::upsertBenchRuns(
                args.benchJson, "sweep",
                {std::move(sr), std::move(cold), std::move(warmRun)});
        }
        if (!same) {
            bench::finishObs(args, &perfReports, &cctReports,
                         &sampleReports);
            return 1;
        }
    }
    bench::finishObs(args, &perfReports, &cctReports,
                     &sampleReports);
    return 0;
}
