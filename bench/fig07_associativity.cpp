/**
 * @file
 * Figure 7: effect of associativity (8K caches, 32B lines, assoc 1,
 * 2, 4, 8) on I- and D-cache miss rates, suite averages per mode.
 *
 * To reproduce: misses fall as associativity rises, with the largest
 * step from direct-mapped to 2-way. All configurations observe one
 * run per (workload, mode) through a fan-out sink.
 */
#include "arch/cache/cache.h"
#include "bench_util.h"

using namespace jrs;

int
main()
{
    bench::header(
        "Figure 7 — associativity sweep (8K, 32B, assoc 1/2/4/8)",
        "biggest miss reduction when going from 1-way to 2-way");

    const std::uint32_t assocs[] = {1, 2, 4, 8};

    Table t({"mode", "assoc", "icache_miss%", "dcache_miss%"});
    for (const bool jit : {false, true}) {
        double i_sum[4] = {}, d_sum[4] = {};
        int n = 0;
        for (const WorkloadInfo *w : bench::suite()) {
            std::vector<std::unique_ptr<CacheSink>> sinks;
            MultiSink multi;
            for (std::uint32_t a : assocs) {
                sinks.push_back(std::make_unique<CacheSink>(
                    CacheConfig{8 * 1024, 32, a, true},
                    CacheConfig{8 * 1024, 32, a, true}));
                multi.add(sinks.back().get());
            }
            RunSpec s;
            s.workload = w;
            s.policy = jit
                ? std::static_pointer_cast<CompilationPolicy>(
                      std::make_shared<AlwaysCompilePolicy>())
                : std::static_pointer_cast<CompilationPolicy>(
                      std::make_shared<NeverCompilePolicy>());
            s.sink = &multi;
            (void)runWorkload(s);
            for (std::size_t k = 0; k < 4; ++k) {
                i_sum[k] += sinks[k]->icache().stats().missRate();
                d_sum[k] += sinks[k]->dcache().stats().missRate();
            }
            ++n;
        }
        for (std::size_t k = 0; k < 4; ++k) {
            t.addRow({jit ? "jit" : "interp",
                      std::to_string(assocs[k]),
                      fixed(100.0 * i_sum[k] / n, 3),
                      fixed(100.0 * d_sum[k] / n, 3)});
        }
    }
    t.print(std::cout);
    return 0;
}
