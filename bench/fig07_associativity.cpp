/**
 * @file
 * Figure 7: effect of associativity (8K caches, 32B lines, assoc 1,
 * 2, 4, 8) on I- and D-cache miss rates, suite averages per mode.
 *
 * To reproduce: misses fall as associativity rises, with the largest
 * step from direct-mapped to 2-way.
 *
 * This bench runs on the sweep engine: each (workload, mode) stream
 * is recorded once and replayed into the four associativity models,
 * with streams processed in parallel across `--jobs` workers.
 * `--compare-serial` also runs the pre-sweep implementation (live VM
 * run per point) and checks the two produce bit-identical miss rates;
 * `--bench-json FILE` records serial/cold/warm throughput in a
 * jrs-bench-v1 trajectory file (prof/bench.h).
 */
#include <chrono>
#include <thread>

#include "arch/cache/cache.h"
#include "bench_util.h"
#include "sweep/grids.h"

using namespace jrs;

namespace {

/** Per-point serial miss rates, keyed by the grid's point labels. */
struct SerialBaseline {
    double seconds = 0;
    // label -> (icache_miss_pct, dcache_miss_pct)
    std::vector<std::pair<std::string, std::pair<double, double>>>
        points;
};

/** The original implementation: one live VM run per (workload, mode)
    fanned out to all four associativity models through a MultiSink. */
SerialBaseline
runSerialBaseline()
{
    const auto t0 = std::chrono::steady_clock::now();
    SerialBaseline out;
    for (const WorkloadInfo *w : bench::suite()) {
        for (const bool jit : {false, true}) {
            std::vector<std::unique_ptr<CacheSink>> sinks;
            MultiSink multi;
            for (const std::uint32_t a : sweep::kFig07Assocs) {
                sinks.push_back(std::make_unique<CacheSink>(
                    CacheConfig{8 * 1024, 32, a, true},
                    CacheConfig{8 * 1024, 32, a, true}));
                multi.add(sinks.back().get());
            }
            RunSpec s;
            s.workload = w;
            s.policy = jit
                ? std::static_pointer_cast<CompilationPolicy>(
                      std::make_shared<AlwaysCompilePolicy>())
                : std::static_pointer_cast<CompilationPolicy>(
                      std::make_shared<NeverCompilePolicy>());
            s.sink = &multi;
            (void)runWorkload(s);
            for (std::size_t k = 0; k < sinks.size(); ++k) {
                out.points.emplace_back(
                    sweep::fig07Label(w->name, jit,
                                      sweep::kFig07Assocs[k]),
                    std::make_pair(
                        100.0
                            * sinks[k]->icache().stats().missRate(),
                        100.0
                            * sinks[k]->dcache().stats().missRate()));
            }
        }
    }
    out.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return out;
}

/** Exact per-point equality between serial and sweep results. */
bool
identical(const SerialBaseline &serial,
          const sweep::SweepResult &swept)
{
    for (const auto &[label, miss] : serial.points) {
        const sweep::PointResult *p = swept.find(label);
        if (p == nullptr || !p->ok
            || p->metric("icache_miss_pct") != miss.first
            || p->metric("dcache_miss_pct") != miss.second) {
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::SweepBenchArgs args =
        bench::parseSweepBenchArgs(argc, argv);
    bench::setupObs(args);

    bench::header(
        "Figure 7 — associativity sweep (8K, 32B, assoc 1/2/4/8)",
        "biggest miss reduction when going from 1-way to 2-way");

    sweep::SweepOptions opts;
    opts.jobs = args.jobs;
    opts.cacheDir = args.cacheDir;
    obs::PerfReportSet perfReports;
    bench::attachPerfObserver(opts, args, perfReports);
    prof::CctReportSet cctReports;
    bench::attachCctObserver(opts, args, cctReports);
    prof::SampleReportSet sampleReports;
    bench::attachSampleObserver(opts, args, sampleReports);
    sweep::SweepEngine engine(opts);
    const sweep::SweepResult result =
        engine.run(sweep::buildFig07Grid());
    if (!result.allOk()) {
        for (const sweep::PointResult &p : result.points) {
            if (!p.ok)
                std::cerr << p.label << ": " << p.error << '\n';
        }
        bench::finishObs(args, &perfReports, &cctReports,
                         &sampleReports);
        return 1;
    }

    Table t({"mode", "assoc", "icache_miss%", "dcache_miss%"});
    for (const bool jit : {false, true}) {
        for (const std::uint32_t a : sweep::kFig07Assocs) {
            double i_sum = 0, d_sum = 0;
            int n = 0;
            for (const WorkloadInfo *w : bench::suite()) {
                const sweep::PointResult *p =
                    result.find(sweep::fig07Label(w->name, jit, a));
                i_sum += p->metric("icache_miss_pct");
                d_sum += p->metric("dcache_miss_pct");
                ++n;
            }
            t.addRow({jit ? "jit" : "interp", std::to_string(a),
                      fixed(i_sum / n, 3), fixed(d_sum / n, 3)});
        }
    }
    t.print(std::cout);
    std::cout << "sweep: " << fixed(result.wallSeconds, 2) << "s, "
              << result.jobs << " jobs, "
              << result.traces.recordings << " recordings, "
              << result.traces.memoryHits << " memory hits, "
              << result.traces.diskLoads << " disk loads\n";

    if (!args.json.empty())
        result.writeJson(args.json);

    if (args.compareSerial || !args.benchJson.empty()) {
        // Warm pass: every stream is now in the engine's in-process
        // cache, so this measures the pure replay-many path.
        const sweep::SweepResult warm =
            engine.run(sweep::buildFig07Grid());
        const SerialBaseline serial = runSerialBaseline();
        const bool same =
            identical(serial, result) && identical(serial, warm);
        std::cout << "\nserial " << fixed(serial.seconds, 2)
                  << "s | sweep cold " << fixed(result.wallSeconds, 2)
                  << "s (" << fixed(serial.seconds
                                        / result.wallSeconds, 2)
                  << "x) | sweep warm " << fixed(warm.wallSeconds, 2)
                  << "s (" << fixed(serial.seconds / warm.wallSeconds,
                                    2)
                  << "x) | results bit-identical: "
                  << (same ? "yes" : "NO") << '\n';
        if (!args.benchJson.empty()) {
            // Three jrs-bench-v1 entries sharing one event count (the
            // same grid's streams) so events_per_sec ratios track the
            // printed speedups.
            const std::uint64_t ev = bench::sweepEvents(result);
            prof::BenchRun sr =
                bench::benchRun("fig07/serial", ev, serial.seconds);
            sr.metrics.emplace_back("jobs",
                                    static_cast<double>(result.jobs));
            sr.metrics.emplace_back(
                "hw_threads",
                static_cast<double>(
                    std::thread::hardware_concurrency()));
            prof::BenchRun cold = bench::benchRun(
                "fig07/sweep_cold", ev, result.wallSeconds);
            cold.metrics.emplace_back(
                "speedup_vs_serial",
                serial.seconds / result.wallSeconds);
            prof::BenchRun warmRun = bench::benchRun(
                "fig07/sweep_warm", ev, warm.wallSeconds);
            warmRun.metrics.emplace_back(
                "speedup_vs_serial", serial.seconds / warm.wallSeconds);
            warmRun.metrics.emplace_back("bit_identical",
                                         same ? 1.0 : 0.0);
            bench::upsertBenchRuns(
                args.benchJson, "sweep",
                {std::move(sr), std::move(cold), std::move(warmRun)});
        }
        if (!same) {
            bench::finishObs(args, &perfReports, &cctReports,
                         &sampleReports);
            return 1;
        }
    }
    bench::finishObs(args, &perfReports, &cctReports,
                     &sampleReports);
    return 0;
}
