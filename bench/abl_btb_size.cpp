/**
 * @file
 * Ablation: BTB capacity vs the interpreter's indirect jumps.
 *
 * The paper recommends predictors tailored for indirect branches in
 * interpreter mode. This sweep shows WHY capacity alone cannot fix
 * the problem: the dispatch jump is a single site with ~90 live
 * targets, so its misprediction rate barely moves with BTB size —
 * the miss is target interference, not capacity.
 *
 * Runs on the sweep engine: the four BTB capacities share one
 * recording per (workload, mode), and streams replay in parallel
 * across `--jobs` workers.
 */
#include "bench_util.h"
#include "sweep/grids.h"

using namespace jrs;

int
main(int argc, char **argv)
{
    const bench::SweepBenchArgs args =
        bench::parseSweepBenchArgs(argc, argv);
    bench::setupObs(args);

    bench::header(
        "Ablation — BTB size sweep for indirect transfers",
        "interp dispatch mispredicts are interference, not capacity: "
        "bigger BTBs barely help");

    sweep::SweepOptions opts;
    opts.jobs = args.jobs;
    opts.cacheDir = args.cacheDir;
    obs::PerfReportSet perfReports;
    bench::attachPerfObserver(opts, args, perfReports);
    prof::CctReportSet cctReports;
    bench::attachCctObserver(opts, args, cctReports);
    prof::SampleReportSet sampleReports;
    bench::attachSampleObserver(opts, args, sampleReports);
    sweep::SweepEngine engine(opts);
    const sweep::SweepResult result =
        engine.run(sweep::buildBtbGrid());
    if (!result.allOk()) {
        for (const sweep::PointResult &p : result.points) {
            if (!p.ok)
                std::cerr << p.label << ": " << p.error << '\n';
        }
        bench::finishObs(args, &perfReports, &cctReports,
                         &sampleReports);
        return 1;
    }

    Table t({"workload", "mode", "indirects", "btb64%", "btb256%",
             "btb1k%", "btb4k%"});
    for (const WorkloadInfo *w : bench::suite()) {
        for (const bool jit : {false, true}) {
            const sweep::PointResult *p =
                result.find(sweep::btbLabel(w->name, jit));
            std::vector<std::string> row{
                w->name, jit ? "jit" : "interp",
                withCommas(static_cast<std::uint64_t>(
                    p->metric("indirects")))};
            for (const std::size_t size : sweep::kBtbSizes) {
                row.push_back(fixed(
                    p->metric(sweep::btbMetricName(size)), 1));
            }
            t.addRow(row);
        }
    }
    t.print(std::cout);
    std::cout << "sweep: " << fixed(result.wallSeconds, 2) << "s, "
              << result.jobs << " jobs, "
              << result.traces.recordings << " recordings, "
              << result.traces.diskLoads << " disk loads\n";

    if (!args.json.empty())
        result.writeJson(args.json);
    bench::finishObs(args, &perfReports, &cctReports,
                     &sampleReports);
    return 0;
}
