/**
 * @file
 * Ablation: BTB capacity vs the interpreter's indirect jumps.
 *
 * The paper recommends predictors tailored for indirect branches in
 * interpreter mode. This sweep shows WHY capacity alone cannot fix
 * the problem: the dispatch jump is a single site with ~90 live
 * targets, so its misprediction rate barely moves with BTB size —
 * the miss is target interference, not capacity.
 */
#include "arch/bpred/btb.h"
#include "bench_util.h"

using namespace jrs;

namespace {

/** Measures indirect-target misprediction for several BTB sizes. */
class BtbSweepSink : public TraceSink {
  public:
    explicit BtbSweepSink(const std::vector<std::size_t> &sizes) {
        for (std::size_t s : sizes)
            btbs_.emplace_back(s);
        misses_.assign(btbs_.size(), 0);
    }

    void onEvent(const TraceEvent &ev) override {
        if (ev.kind != NKind::IndirectJump
            && ev.kind != NKind::IndirectCall) {
            return;
        }
        ++indirects_;
        for (std::size_t i = 0; i < btbs_.size(); ++i) {
            if (btbs_[i].predict(ev.pc) != ev.target)
                ++misses_[i];
            btbs_[i].update(ev.pc, ev.target);
        }
    }

    std::uint64_t indirects() const { return indirects_; }
    std::uint64_t misses(std::size_t i) const { return misses_[i]; }

  private:
    std::vector<Btb> btbs_;
    std::vector<std::uint64_t> misses_;
    std::uint64_t indirects_ = 0;
};

} // namespace

int
main()
{
    bench::header(
        "Ablation — BTB size sweep for indirect transfers",
        "interp dispatch mispredicts are interference, not capacity: "
        "bigger BTBs barely help");

    const std::vector<std::size_t> sizes = {64, 256, 1024, 4096};
    Table t({"workload", "mode", "indirects", "btb64%", "btb256%",
             "btb1k%", "btb4k%"});

    for (const WorkloadInfo *w : bench::suite()) {
        BtbSweepSink interp_sink(sizes), jit_sink(sizes);
        (void)runBothModes(*w, 0, &interp_sink, &jit_sink);
        for (const bool jit : {false, true}) {
            const BtbSweepSink &s = jit ? jit_sink : interp_sink;
            std::vector<std::string> row{
                w->name, jit ? "jit" : "interp",
                withCommas(s.indirects())};
            for (std::size_t i = 0; i < sizes.size(); ++i) {
                row.push_back(fixed(
                    percent(s.misses(i), s.indirects()), 1));
            }
            t.addRow(row);
        }
    }
    t.print(std::cout);
    return 0;
}
