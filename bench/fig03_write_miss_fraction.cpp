/**
 * @file
 * Figure 3: percentage of data-cache misses that are writes
 * (direct-mapped, 32-byte lines, 64K).
 *
 * To reproduce: in JIT mode, 50-90% of D-misses are write misses —
 * dominated by code generation/installation stores into the code
 * cache (compulsory misses).
 */
#include "arch/cache/cache.h"
#include "bench_util.h"

using namespace jrs;

int
main()
{
    bench::header(
        "Figure 3 — share of D-misses that are writes (DM, 32B, 64K)",
        "JIT mode: 50-90% of data misses are writes (code install)");

    Table t({"workload", "interp_wmiss%", "jit_wmiss%",
             "jit_translate_wmiss%"});

    const CacheConfig icfg{64 * 1024, 32, 1, true};
    const CacheConfig dcfg{64 * 1024, 32, 1, true};

    for (const WorkloadInfo *w : bench::suite(true)) {
        CacheSink interp_sink(icfg, dcfg);
        CacheSink jit_sink(icfg, dcfg);
        (void)runBothModes(*w, 0, &interp_sink, &jit_sink);
        const CacheStats &di = interp_sink.dcache().stats();
        const CacheStats &dj = jit_sink.dcache().stats();
        const CacheStats &dt =
            jit_sink.dcache().phaseStats(Phase::Translate);
        t.addRow({
            w->name,
            fixed(100.0 * di.writeMissFraction(), 1),
            fixed(100.0 * dj.writeMissFraction(), 1),
            fixed(100.0 * dt.writeMissFraction(), 1),
        });
    }
    t.print(std::cout);
    return 0;
}
